//! Sharded multi-hypervisor admission: N independent per-host
//! [`AdmissionEngine`]s behind a deterministic cross-shard placement
//! policy.
//!
//! # Model
//!
//! An [`AdmissionFleet`] owns `hosts` engines, each managing its own
//! platform instance with its own CAT/membw state, analysis cache, and
//! rejection memo. Requests are routed to exactly one host by the
//! [`FleetRouter`], then served by that host's engine exactly as the
//! single-host engine would serve them — a one-host fleet is
//! byte-for-byte the plain engine (same decision log bytes, same
//! allocation, same counters; pinned by the conformance suite).
//!
//! # Placement policy (the determinism argument)
//!
//! Routing is a pure function of the *bookkept* per-host requested
//! load, never of solver outcomes:
//!
//! * **Arrival** — a VM the router already owns (a retry of a
//!   still-live arrival) routes back to its owning host with no second
//!   charge, so the owning engine's duplicate-id check or rejection
//!   memo answers it. For a fresh VM, candidate hosts are ordered
//!   canonically: ascending
//!   bookkept headroom (best fit first), host index on ties. The
//!   request *falls through* that order past every host whose bookkept
//!   headroom cannot take the VM's reference utilization, and lands on
//!   the first that can; when no host can, it lands on the
//!   maximum-headroom host (whose engine then runs the authoritative
//!   capacity/solver checks and rejects — the saturated regime the
//!   per-engine rejection memo exists for). The router then charges
//!   the VM's utilization to the chosen host *whether or not the
//!   engine admits it* — requested-load bookkeeping. That is what
//!   makes the decision loop trivially parallel across shards: the
//!   whole routing plan is computable without a single solver call, so
//!   each host's request subsequence is fixed up front and replays
//!   independently ([`AdmissionFleet::replay_parallel`]). Bookkeeping
//!   noise (a rejected VM stays charged until its departure) only
//!   shifts future placements between hosts; the engines stay the
//!   ground truth for every admit/reject.
//! * **Departure / mode change** — routed to the owning host (the one
//!   the arrival was routed to, admitted or not); the router releases
//!   or adjusts the bookkept charge. Requests for VMs the router never
//!   saw go canonically to host 0, whose engine produces the same
//!   deterministic rejection the single engine would.
//! * **Batch** — members are put in the engine's canonical order
//!   (decreasing utilization, id on ties) and routed in that order;
//!   members landing on the same host form one per-host sub-batch so
//!   each engine keeps its batch-boundary verification semantics.
//!
//! # Parallel replay
//!
//! [`AdmissionFleet::replay_parallel`] reuses the coarse-unit executor
//! pattern of the sweep: the routing pass (serial, cheap) assigns each
//! decision a global ticket and buckets the work per host; worker
//! threads claim whole hosts from an atomic ticket counter, replay
//! each host's subsequence on a private engine, and the per-host
//! decision vectors merge once after join by ticket order. The merged
//! `#NNNNN`-indexed decision log is byte-identical at every thread
//! count and equal to the serial fleet's, because every engine sees
//! the identical request subsequence either way.

use crate::admission::{
    canonical_vm_order, AdmissionConfig, AdmissionDecision, AdmissionEngine, AdmissionRequest,
    AdmissionStats,
};
use vc2m_analysis::core_check::UTILIZATION_EPS;
use vc2m_model::Platform;
use vc2m_simcore::MetricsRegistry;

/// Fleet configuration: how many hosts, and the per-host engine
/// configuration (every host gets the same one — engines derive their
/// per-VM streams from request content, not host identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated hosts (shards). Must be at least 1.
    pub hosts: usize,
    /// The configuration each per-host engine runs with.
    pub engine: AdmissionConfig,
}

impl FleetConfig {
    /// A fleet of `hosts` hosts with the default engine configuration
    /// for `seed`.
    pub fn new(hosts: usize, seed: u64) -> Self {
        FleetConfig {
            hosts,
            engine: AdmissionConfig::new(seed),
        }
    }

    /// Replaces the per-host engine configuration.
    pub fn with_engine(mut self, engine: AdmissionConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Fleet-level routing counters (engine counters aggregate separately
/// via [`AdmissionFleet::aggregate_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests routed (batch members count individually).
    pub routed: u64,
    /// Arrivals routed to a bookkeeping-feasible host (best fit or a
    /// fall-through).
    pub best_fit_routes: u64,
    /// Arrivals of VMs the router already owns (retries), routed to
    /// the owning host without a second charge.
    pub retry_routes: u64,
    /// Arrivals for which no host was bookkeeping-feasible (sent to
    /// the maximum-headroom host for the authoritative rejection).
    pub saturated_routes: u64,
    /// Departures/mode changes for VMs the router never saw (sent to
    /// host 0 for the deterministic unknown-VM rejection).
    pub unowned_routes: u64,
}

impl FleetStats {
    /// Exports the counters under the `fleet.` prefix.
    pub fn export_metrics(&self, out: &mut MetricsRegistry) {
        out.counter_add("fleet.routed", self.routed);
        out.counter_add("fleet.best_fit_routes", self.best_fit_routes);
        out.counter_add("fleet.retry_routes", self.retry_routes);
        out.counter_add("fleet.saturated_routes", self.saturated_routes);
        out.counter_add("fleet.unowned_routes", self.unowned_routes);
    }
}

/// The deterministic cross-shard router: bookkept requested load per
/// host plus the VM → owning-host map. See the [module docs](self)
/// for the policy and why it is outcome-independent.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    capacity: f64,
    loads: Vec<f64>,
    /// `(vm id, owning host, bookkept utilization)` for every routed
    /// arrival not yet departed.
    owners: Vec<(usize, usize, f64)>,
    stats: FleetStats,
}

impl FleetRouter {
    /// A router over `hosts` empty hosts of the given platform.
    pub fn new(hosts: usize, platform: &Platform) -> Self {
        assert!(hosts >= 1, "a fleet needs at least one host");
        FleetRouter {
            capacity: platform.max_usable_cores() as f64 * (1.0 + UTILIZATION_EPS),
            loads: vec![0.0; hosts],
            owners: Vec::new(),
            stats: FleetStats::default(),
        }
    }

    /// Bookkept load per host.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Routing counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    fn owner_position(&self, vm: usize) -> Option<usize> {
        self.owners.iter().position(|&(id, _, _)| id == vm)
    }

    /// Routes an arrival. A VM the router already owns (a *retry* of
    /// a still-live arrival) goes back to its owning host without a
    /// second charge — retry affinity is what lets the owning engine's
    /// rejection memo (or duplicate-id check) answer it. A fresh VM
    /// goes to the first bookkeeping-feasible host in canonical
    /// candidate order (ascending headroom, index on ties), else the
    /// maximum-headroom host, and is charged to it either way.
    pub fn route_arrival(&mut self, vm: usize, utilization: f64) -> usize {
        self.stats.routed += 1;
        if let Some(position) = self.owner_position(vm) {
            self.stats.retry_routes += 1;
            return self.owners[position].1;
        }
        let mut best_fit: Option<usize> = None;
        let mut fallback = 0usize;
        for (h, &load) in self.loads.iter().enumerate() {
            if load + utilization <= self.capacity
                && best_fit.is_none_or(|b| load > self.loads[b])
            {
                best_fit = Some(h);
            }
            if load < self.loads[fallback] {
                fallback = h;
            }
        }
        let host = match best_fit {
            Some(h) => {
                self.stats.best_fit_routes += 1;
                h
            }
            None => {
                self.stats.saturated_routes += 1;
                fallback
            }
        };
        self.loads[host] += utilization;
        self.owners.push((vm, host, utilization));
        host
    }

    /// Routes a departure to the owning host and releases the charge;
    /// unknown VMs go to host 0 (for the deterministic rejection).
    pub fn route_departure(&mut self, vm: usize) -> usize {
        self.stats.routed += 1;
        match self.owner_position(vm) {
            Some(position) => {
                let (_, host, utilization) = self.owners.remove(position);
                self.loads[host] -= utilization;
                host
            }
            None => {
                self.stats.unowned_routes += 1;
                0
            }
        }
    }

    /// Routes a mode change to the owning host and re-charges it with
    /// the new mode's utilization; unknown VMs go to host 0.
    pub fn route_mode(&mut self, vm: usize, utilization: f64) -> usize {
        self.stats.routed += 1;
        match self.owner_position(vm) {
            Some(position) => {
                let (_, host, previous) = self.owners[position];
                self.loads[host] += utilization - previous;
                self.owners[position].2 = utilization;
                host
            }
            None => {
                self.stats.unowned_routes += 1;
                0
            }
        }
    }

    /// Routes one request (the shared dispatch used by the serial
    /// fleet and the parallel routing pass).
    pub fn route(&mut self, request: &AdmissionRequest) -> usize {
        match request {
            AdmissionRequest::Arrival(vm) => {
                self.route_arrival(vm.id().0, vm.reference_utilization())
            }
            AdmissionRequest::Departure(id) => self.route_departure(id.0),
            AdmissionRequest::ModeChange(vm) => {
                self.route_mode(vm.id().0, vm.reference_utilization())
            }
        }
    }
}

/// One merged-log entry: the owning host plus the engine's decision
/// with its index rewritten to the fleet-global ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDecision {
    /// The host whose engine served the request.
    pub host: usize,
    /// The engine decision, re-indexed into the merged fleet log.
    pub decision: AdmissionDecision,
}

impl FleetDecision {
    /// The merged-log line: the engine's byte-stable line, with the
    /// owning host appended when the fleet has more than one (so a
    /// one-host fleet log is byte-identical to the engine log).
    pub fn log_line(&self, hosts: usize) -> String {
        if hosts > 1 {
            format!("{} host={}", self.decision.log_line(), self.host)
        } else {
            self.decision.log_line()
        }
    }
}

/// One unit of replayable fleet work: a single request or a batch of
/// concurrent arrivals (mirroring the trace model, without depending
/// on it).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetWorkItem {
    /// One request on its own.
    Single(AdmissionRequest),
    /// Concurrent arrivals admitted as one order-independent batch.
    Batch(Vec<AdmissionRequest>),
}

/// Work bucketed for one host by the parallel routing pass.
enum HostWork {
    Single(u64, AdmissionRequest),
    Batch(Vec<u64>, Vec<AdmissionRequest>),
}

/// The sharded admission controller. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionFleet {
    platform: Platform,
    config: FleetConfig,
    engines: Vec<AdmissionEngine>,
    router: FleetRouter,
    decisions: Vec<FleetDecision>,
    next_index: u64,
}

impl AdmissionFleet {
    /// Creates a fleet of empty hosts.
    pub fn new(platform: Platform, config: FleetConfig) -> Self {
        assert!(config.hosts >= 1, "a fleet needs at least one host");
        AdmissionFleet {
            platform,
            config,
            engines: (0..config.hosts)
                .map(|_| AdmissionEngine::new(platform, config.engine))
                .collect(),
            router: FleetRouter::new(config.hosts, &platform),
            decisions: Vec::new(),
            next_index: 0,
        }
    }

    /// The platform every host runs.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The per-host engines, indexed by host.
    pub fn engines(&self) -> &[AdmissionEngine] {
        &self.engines
    }

    /// The router (bookkept loads and routing counters).
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    /// The merged decision log so far, in ticket order.
    pub fn decisions(&self) -> &[FleetDecision] {
        &self.decisions
    }

    /// Renders the merged decision log, one byte-stable line per
    /// decision, newline-terminated. With one host this is exactly the
    /// engine's `log_text()`.
    pub fn log_text(&self) -> String {
        let mut text = String::new();
        for d in &self.decisions {
            text.push_str(&d.log_line(self.config.hosts));
            text.push('\n');
        }
        text
    }

    /// Engine counters summed across hosts.
    pub fn aggregate_stats(&self) -> AdmissionStats {
        self.engines
            .iter()
            .fold(AdmissionStats::default(), |sum, e| sum.merged(e.stats()))
    }

    /// Total admitted reference utilization across hosts (ground
    /// truth, not the router's bookkeeping). The `+ 0.0` normalizes
    /// the empty sum, which is `-0.0`.
    pub fn admitted_load(&self) -> f64 {
        self.engines
            .iter()
            .flat_map(|e| e.working_set())
            .map(|vm| vm.reference_utilization())
            .sum::<f64>()
            + 0.0
    }

    /// Exports fleet routing counters, aggregated `admission.*`
    /// engine counters, and fleet-level gauges.
    pub fn export_metrics(&self, out: &mut MetricsRegistry) {
        self.router.stats.export_metrics(out);
        self.aggregate_stats().export_metrics(out);
        out.gauge_set("fleet.hosts", self.config.hosts as f64);
        out.gauge_set("fleet.load", self.admitted_load());
        out.gauge_set(
            "fleet.vms",
            self.engines
                .iter()
                .map(|e| e.working_set().len())
                .sum::<usize>() as f64,
        );
    }

    fn push(&mut self, host: usize, mut decision: AdmissionDecision) -> &FleetDecision {
        decision.index = self.next_index;
        self.next_index += 1;
        self.decisions.push(FleetDecision { host, decision });
        self.decisions.last().expect("just pushed")
    }

    /// Routes and serves one request.
    pub fn submit(&mut self, request: AdmissionRequest) -> &FleetDecision {
        let host = self.router.route(&request);
        let decision = self.engines[host].submit(request).clone();
        self.push(host, decision)
    }

    /// Routes and serves a batch of concurrent arrivals: members are
    /// put in canonical order, routed in that order, and each host's
    /// members are admitted as one engine sub-batch. Returns the
    /// batch's merged decisions in canonical order.
    pub fn submit_batch(&mut self, requests: Vec<AdmissionRequest>) -> &[FleetDecision] {
        let first = self.decisions.len();
        if self.config.hosts == 1 {
            // Degenerate to the engine's own batch path so even the
            // per-engine counters match the plain engine exactly.
            self.router.route_batch_bookkeeping(&requests);
            let decisions: Vec<AdmissionDecision> =
                self.engines[0].submit_batch(requests).to_vec();
            for decision in decisions {
                self.push(0, decision);
            }
            return &self.decisions[first..];
        }
        let mut arrivals: Vec<AdmissionRequest> = Vec::new();
        for request in requests {
            match request {
                AdmissionRequest::Arrival(_) => arrivals.push(request),
                // Mirror the engine: anything else in a batch is
                // processed in place, before the arrivals.
                other => {
                    self.submit(other);
                }
            }
        }
        arrivals.sort_by(|a, b| match (a, b) {
            (AdmissionRequest::Arrival(x), AdmissionRequest::Arrival(y)) => {
                canonical_vm_order(x, y)
            }
            _ => unreachable!("only arrivals are collected"),
        });
        // Route in canonical order, bucketing per host while keeping
        // each member's position in the canonical sequence.
        let mut per_host: Vec<(usize, Vec<usize>, Vec<AdmissionRequest>)> = Vec::new();
        for (position, request) in arrivals.into_iter().enumerate() {
            let host = self.router.route(&request);
            match per_host.iter_mut().find(|(h, _, _)| *h == host) {
                Some((_, positions, members)) => {
                    positions.push(position);
                    members.push(request);
                }
                None => per_host.push((host, vec![position], vec![request])),
            }
        }
        per_host.sort_by_key(|&(h, _, _)| h);
        let mut ordered: Vec<(usize, usize, AdmissionDecision)> = Vec::new();
        for (host, positions, members) in per_host {
            let decisions = self.engines[host].submit_batch(members).to_vec();
            debug_assert_eq!(decisions.len(), positions.len());
            for (position, decision) in positions.into_iter().zip(decisions) {
                ordered.push((position, host, decision));
            }
        }
        ordered.sort_by_key(|&(position, _, _)| position);
        for (_, host, decision) in ordered {
            self.push(host, decision);
        }
        &self.decisions[first..]
    }

    /// Serially replays pre-materialized work items (the canonical
    /// fleet semantics the parallel replay is pinned against).
    pub fn replay(&mut self, items: &[FleetWorkItem]) {
        for item in items {
            match item {
                FleetWorkItem::Single(request) => {
                    self.submit(request.clone());
                }
                FleetWorkItem::Batch(requests) => {
                    self.submit_batch(requests.clone());
                }
            }
        }
    }

    /// Replays `items` over a fresh fleet in parallel: a serial
    /// routing pass fixes every decision's host and global ticket,
    /// worker threads claim whole hosts from an atomic counter and
    /// replay each host's subsequence on a private engine, and the
    /// decision vectors merge once after the join in ticket order.
    ///
    /// The result is bit-identical to `new` + [`Self::replay`] at
    /// every `threads` value (pinned by the fleet conformance suite).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn replay_parallel(
        platform: Platform,
        config: FleetConfig,
        items: &[FleetWorkItem],
        threads: usize,
    ) -> AdmissionFleet {
        use std::sync::atomic::{AtomicUsize, Ordering};
        assert!(threads > 0, "need at least one thread");
        let hosts = config.hosts;
        // Routing pass: identical calls, in identical order, to what
        // the serial fleet makes — so bookkept loads, owners, and
        // chosen hosts agree by construction.
        let mut router = FleetRouter::new(hosts, &platform);
        let mut plan: Vec<Vec<HostWork>> = (0..hosts).map(|_| Vec::new()).collect();
        let mut ticket = 0u64;
        for item in items {
            match item {
                FleetWorkItem::Single(request) => {
                    let host = router.route(request);
                    plan[host].push(HostWork::Single(ticket, request.clone()));
                    ticket += 1;
                }
                FleetWorkItem::Batch(requests) => {
                    if hosts == 1 {
                        router.route_batch_bookkeeping(requests);
                        let tickets: Vec<u64> =
                            (ticket..ticket + requests.len() as u64).collect();
                        ticket += requests.len() as u64;
                        plan[0].push(HostWork::Batch(tickets, requests.clone()));
                        continue;
                    }
                    let mut arrivals: Vec<AdmissionRequest> = Vec::new();
                    for request in requests {
                        match request {
                            AdmissionRequest::Arrival(_) => arrivals.push(request.clone()),
                            other => {
                                let host = router.route(other);
                                plan[host].push(HostWork::Single(ticket, other.clone()));
                                ticket += 1;
                            }
                        }
                    }
                    arrivals.sort_by(|a, b| match (a, b) {
                        (AdmissionRequest::Arrival(x), AdmissionRequest::Arrival(y)) => {
                            canonical_vm_order(x, y)
                        }
                        _ => unreachable!("only arrivals are collected"),
                    });
                    let mut buckets: Vec<(usize, Vec<u64>, Vec<AdmissionRequest>)> = Vec::new();
                    for request in arrivals {
                        let host = router.route(&request);
                        match buckets.iter_mut().find(|(h, _, _)| *h == host) {
                            Some((_, tickets, members)) => {
                                tickets.push(ticket);
                                members.push(request);
                            }
                            None => buckets.push((host, vec![ticket], vec![request])),
                        }
                        ticket += 1;
                    }
                    for (host, tickets, members) in buckets {
                        plan[host].push(HostWork::Batch(tickets, members));
                    }
                }
            }
        }
        // Parallel pass: whole hosts are the work units, claimed from
        // an atomic ticket counter; everything mutable is per-thread
        // and merges once after the join (the sweep executor pattern).
        let next = AtomicUsize::new(0);
        let plan_ref = &plan;
        let mut host_results: Vec<(usize, AdmissionEngine, Vec<FleetDecision>)> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads.min(hosts))
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let host = next.fetch_add(1, Ordering::Relaxed);
                                if host >= hosts {
                                    break;
                                }
                                let mut engine = AdmissionEngine::new(platform, config.engine);
                                let mut decisions = Vec::new();
                                for work in &plan_ref[host] {
                                    match work {
                                        HostWork::Single(ticket, request) => {
                                            let mut decision =
                                                engine.submit(request.clone()).clone();
                                            decision.index = *ticket;
                                            decisions.push(FleetDecision { host, decision });
                                        }
                                        HostWork::Batch(tickets, members) => {
                                            let batch =
                                                engine.submit_batch(members.clone()).to_vec();
                                            debug_assert_eq!(batch.len(), tickets.len());
                                            for (ticket, mut decision) in
                                                tickets.iter().zip(batch)
                                            {
                                                decision.index = *ticket;
                                                decisions
                                                    .push(FleetDecision { host, decision });
                                            }
                                        }
                                    }
                                }
                                mine.push((host, engine, decisions));
                            }
                            mine
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("fleet worker panicked"))
                    .collect()
            });
        host_results.sort_by_key(|&(host, _, _)| host);
        let mut engines: Vec<AdmissionEngine> = Vec::with_capacity(hosts);
        let mut decisions: Vec<FleetDecision> = Vec::new();
        for (_, engine, host_decisions) in host_results {
            engines.push(engine);
            decisions.extend(host_decisions);
        }
        decisions.sort_by_key(|d| d.decision.index);
        AdmissionFleet {
            platform,
            config,
            engines,
            router,
            decisions,
            next_index: ticket,
        }
    }
}

impl FleetRouter {
    /// Bookkeeping for a one-host batch handed verbatim to the
    /// engine's own batch path: charge arrivals and route the rest, in
    /// the same order the engine processes them, without choosing
    /// hosts (there is only one).
    fn route_batch_bookkeeping(&mut self, requests: &[AdmissionRequest]) {
        for request in requests {
            self.route(request);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionVerdict;
    use vc2m_model::{Task, TaskId, TaskSet, VmId, VmSpec, WcetSurface};

    fn vm(id: usize, wcet_ms: f64, n: usize) -> VmSpec {
        let space = Platform::platform_a().resources();
        let tasks: TaskSet = (0..n)
            .map(|i| {
                Task::new(
                    TaskId(id * 1000 + i),
                    10.0,
                    WcetSurface::flat(&space, wcet_ms).unwrap(),
                )
                .unwrap()
            })
            .collect();
        VmSpec::new(VmId(id), tasks).unwrap()
    }

    fn fleet(hosts: usize) -> AdmissionFleet {
        AdmissionFleet::new(Platform::platform_a(), FleetConfig::new(hosts, 42))
    }

    #[test]
    fn one_host_fleet_matches_plain_engine() {
        let mut f = fleet(1);
        let mut e = AdmissionEngine::new(Platform::platform_a(), AdmissionConfig::new(42));
        for request in [
            AdmissionRequest::Arrival(vm(1, 2.0, 2)),
            AdmissionRequest::Arrival(vm(2, 3.0, 3)),
            AdmissionRequest::Departure(VmId(1)),
            AdmissionRequest::ModeChange(vm(2, 1.0, 1)),
            AdmissionRequest::Departure(VmId(9)),
        ] {
            f.submit(request.clone());
            e.submit(request);
        }
        f.submit_batch(vec![
            AdmissionRequest::Arrival(vm(5, 2.0, 1)),
            AdmissionRequest::Arrival(vm(6, 1.0, 2)),
        ]);
        e.submit_batch(vec![
            AdmissionRequest::Arrival(vm(5, 2.0, 1)),
            AdmissionRequest::Arrival(vm(6, 1.0, 2)),
        ]);
        assert_eq!(f.log_text(), e.log_text());
        assert_eq!(f.engines()[0].allocation(), e.allocation());
        assert_eq!(&f.aggregate_stats(), e.stats());
    }

    #[test]
    fn arrivals_spread_over_hosts_and_departures_route_home() {
        let mut f = fleet(2);
        // Each VM loads 1.5 cores of a 4-core host; bookkeeping packs
        // two onto host 0 (3.0 <= 4) and spills the third (4.5 > 4).
        let d1 = f.submit(AdmissionRequest::Arrival(vm(1, 5.0, 3))).clone();
        let d2 = f.submit(AdmissionRequest::Arrival(vm(2, 5.0, 3))).clone();
        let d3 = f.submit(AdmissionRequest::Arrival(vm(3, 5.0, 3))).clone();
        assert!(matches!(
            d1.decision.verdict,
            AdmissionVerdict::Admitted { .. }
        ));
        assert!(matches!(
            d2.decision.verdict,
            AdmissionVerdict::Admitted { .. }
        ));
        assert_eq!(d1.host, 0);
        assert_eq!(d2.host, 0, "best fit packs the tighter host first");
        assert_eq!(d3.host, 1, "bookkept capacity falls through to host 1");
        let d = f.submit(AdmissionRequest::Departure(VmId(2))).clone();
        assert_eq!(d.host, 0, "departure routes to the owning host");
        assert_eq!(d.decision.verdict, AdmissionVerdict::Departed);
        for engine in f.engines() {
            if !engine.working_set().is_empty() {
                engine.allocation().verify(f.platform()).unwrap();
            }
        }
    }

    #[test]
    fn merged_log_indices_are_global_and_lines_carry_hosts() {
        let mut f = fleet(2);
        f.submit(AdmissionRequest::Arrival(vm(1, 6.0, 3)));
        f.submit(AdmissionRequest::Arrival(vm(2, 6.0, 3)));
        f.submit(AdmissionRequest::Arrival(vm(3, 6.0, 3)));
        let text = f.log_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("#00000 "), "{}", lines[0]);
        assert!(lines[2].starts_with("#00002 "), "{}", lines[2]);
        assert!(lines[0].ends_with("host=0"), "{}", lines[0]);
        assert!(lines[2].ends_with("host=1"), "{}", lines[2]);
    }

    #[test]
    fn parallel_replay_matches_serial_at_every_thread_count() {
        let items: Vec<FleetWorkItem> = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(2, 4.0, 3))),
            FleetWorkItem::Batch(vec![
                AdmissionRequest::Arrival(vm(3, 2.0, 2)),
                AdmissionRequest::Arrival(vm(4, 5.0, 2)),
            ]),
            FleetWorkItem::Single(AdmissionRequest::Departure(VmId(2))),
            FleetWorkItem::Single(AdmissionRequest::ModeChange(vm(1, 2.0, 2))),
        ];
        let platform = Platform::platform_a();
        let config = FleetConfig::new(3, 42);
        let mut serial = AdmissionFleet::new(platform, config);
        serial.replay(&items);
        for threads in [1, 2, 8] {
            let parallel = AdmissionFleet::replay_parallel(platform, config, &items, threads);
            assert_eq!(parallel.log_text(), serial.log_text(), "threads={threads}");
            assert_eq!(parallel.aggregate_stats(), serial.aggregate_stats());
            assert_eq!(parallel.router().loads(), serial.router().loads());
            for (a, b) in parallel.engines().iter().zip(serial.engines()) {
                assert_eq!(a.allocation(), b.allocation());
            }
        }
    }

    #[test]
    fn fleet_metrics_families_export() {
        let mut f = fleet(2);
        f.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let mut registry = MetricsRegistry::new();
        f.export_metrics(&mut registry);
        assert_eq!(registry.gauge("fleet.hosts"), Some(2.0));
        assert_eq!(registry.counter("fleet.routed"), Some(1));
        assert_eq!(registry.counter("admission.requests"), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        fleet(0);
    }
}
