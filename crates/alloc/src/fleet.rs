//! Sharded multi-hypervisor admission: N independent per-host
//! [`AdmissionEngine`]s behind a deterministic cross-shard placement
//! policy, with replayable host-failure injection and
//! criticality-aware evacuation.
//!
//! # Model
//!
//! An [`AdmissionFleet`] owns `hosts` engines, each managing its own
//! platform instance with its own CAT/membw state, analysis cache, and
//! rejection memo. Requests are routed to exactly one host by the
//! [`FleetRouter`], then served by that host's engine exactly as the
//! single-host engine would serve them — a one-host fleet is
//! byte-for-byte the plain engine (same decision log bytes, same
//! allocation, same counters; pinned by the conformance suite).
//!
//! # Placement policy (the determinism argument)
//!
//! Routing is a pure function of the *bookkept* per-host requested
//! load, never of solver outcomes:
//!
//! * **Arrival** — a VM the router already owns (a retry of a
//!   still-live arrival) routes back to its owning host with no second
//!   charge, so the owning engine's duplicate-id check or rejection
//!   memo answers it. For a fresh VM, candidate hosts are ordered
//!   canonically: ascending
//!   bookkept headroom (best fit first), host index on ties. The
//!   request *falls through* that order past every host whose bookkept
//!   headroom cannot take the VM's reference utilization, and lands on
//!   the first that can; when no host can, it lands on the
//!   maximum-headroom host (whose engine then runs the authoritative
//!   capacity/solver checks and rejects — the saturated regime the
//!   per-engine rejection memo exists for). The router then charges
//!   the VM's utilization to the chosen host *whether or not the
//!   engine admits it* — requested-load bookkeeping. That is what
//!   makes the decision loop trivially parallel across shards: the
//!   whole routing plan is computable without a single solver call, so
//!   each host's request subsequence is fixed up front and replays
//!   independently ([`AdmissionFleet::replay_parallel`]). Bookkeeping
//!   noise (a rejected VM stays charged until its departure) only
//!   shifts future placements between hosts; the engines stay the
//!   ground truth for every admit/reject.
//! * **Departure / mode change** — routed to the owning host (the one
//!   the arrival was routed to, admitted or not); the router releases
//!   or adjusts the bookkept charge. Requests for VMs the router never
//!   saw go canonically to the first alive host (host 0 in a healthy
//!   fleet), whose engine produces the same deterministic rejection
//!   the single engine would.
//! * **Batch** — members are put in the engine's canonical order
//!   (decreasing utilization, id on ties) and routed in that order;
//!   members landing on the same host form one per-host sub-batch so
//!   each engine keeps its batch-boundary verification semantics.
//!
//! # Fault tolerance
//!
//! A seeded, replayable [`FleetFaultPlan`] schedules three fault kinds
//! between replayed work items — **host crash** (the host's engine is
//! lost and rebuilt empty), **host drain** (the host is retired
//! gracefully: its VMs depart its engine, then it leaves the fleet),
//! and **transient verify failure** (the host's next state
//! verification fails once, exercising the engine's repack fallback).
//! Plans are validated when armed ([`AdmissionFleet::arm`]), mirroring
//! the hypervisor fault plan's validated-at-attach rule: out-of-range
//! hosts, faults targeting already-dead hosts, and plans that would
//! leave no survivor are typed [`AllocError::FaultPlan`] errors, never
//! mid-replay panics.
//!
//! Crashing or draining a host **evacuates** it: the router drops the
//! host from placement, zeroes its bookkept load, and re-admits the
//! VMs it owned across the survivors as ordinary canonicalized
//! arrivals (marked `evac` in the merged log). Evacuation order is
//! **criticality-major**: HI-criticality VMs (named by
//! [`FleetScenario::hi_vms`]) get first claim on survivor headroom,
//! then utilization descending, id ascending — the canonical shed
//! order inverted into a protection order. A VM that no survivor can
//! take is retried with linearly growing backoff
//! ([`EvacuationPolicy`]) and, after the attempt budget, reported as a
//! typed [`EvacuationExhausted`] record — never a panic. A departure
//! for an evacuated VM uncharges its *current* owner (the survivor it
//! was re-placed on), not its original route.
//!
//! Every fault and evacuation decision is conditioned only on router
//! bookkeeping among alive hosts — never on engine verdicts — so the
//! serial routing pass reproduces the entire fault/evacuation schedule
//! without running a single engine, and fault-armed parallel replay
//! ([`AdmissionFleet::replay_parallel_armed`]) stays byte-identical to
//! serial at every thread count.
//!
//! # Parallel replay
//!
//! [`AdmissionFleet::replay_parallel`] reuses the coarse-unit executor
//! pattern of the sweep: the routing pass (serial, cheap) assigns each
//! decision a global ticket and buckets the work per host; worker
//! threads claim whole hosts from an atomic ticket counter, replay
//! each host's subsequence on a private engine, and the per-host
//! decision vectors merge once after join by ticket order. The merged
//! `#NNNNN`-indexed decision log is byte-identical at every thread
//! count and equal to the serial fleet's, because every engine sees
//! the identical request subsequence either way.

use crate::admission::{
    canonical_vm_order, AdmissionConfig, AdmissionDecision, AdmissionEngine, AdmissionRequest,
    AdmissionStats,
};
use crate::degrade::Criticality;
use crate::error::AllocError;
use vc2m_analysis::core_check::UTILIZATION_EPS;
use vc2m_model::{Platform, VmId, VmSpec};
use vc2m_rng::{DetRng, Rng};
use vc2m_simcore::MetricsRegistry;

/// Fleet configuration: how many hosts, the per-host engine
/// configuration (every host gets the same one — engines derive their
/// per-VM streams from request content, not host identity), and the
/// evacuation retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated hosts (shards). Must be at least 1.
    pub hosts: usize,
    /// The configuration each per-host engine runs with.
    pub engine: AdmissionConfig,
    /// Retry/backoff policy for evacuated VMs no survivor can take
    /// immediately.
    pub evacuation: EvacuationPolicy,
}

impl FleetConfig {
    /// A fleet of `hosts` hosts with the default engine configuration
    /// for `seed` and the default evacuation policy.
    pub fn new(hosts: usize, seed: u64) -> Self {
        FleetConfig {
            hosts,
            engine: AdmissionConfig::new(seed),
            evacuation: EvacuationPolicy::default(),
        }
    }

    /// Replaces the per-host engine configuration.
    pub fn with_engine(mut self, engine: AdmissionConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the evacuation retry policy.
    pub fn with_evacuation(mut self, evacuation: EvacuationPolicy) -> Self {
        self.evacuation = evacuation;
        self
    }
}

/// Bounded retry/backoff for evacuated VMs that no survivor can take
/// at evacuation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvacuationPolicy {
    /// Placement attempts per evacuee before it is reported as
    /// [`EvacuationExhausted`] (clamped to at least 1).
    pub max_attempts: usize,
    /// Ticket delay between attempts, growing linearly: attempt `k`
    /// waits `backoff * k` tickets.
    pub backoff: u64,
}

impl Default for EvacuationPolicy {
    fn default() -> Self {
        EvacuationPolicy {
            max_attempts: 3,
            backoff: 4,
        }
    }
}

/// One injectable fleet fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetFault {
    /// The host fails abruptly: its engine state is lost (rebuilt
    /// empty) and its VMs are evacuated to the survivors.
    HostCrash {
        /// The failing host.
        host: usize,
    },
    /// The host is retired gracefully: its VMs depart its engine
    /// (logged as `evac` departures), then it leaves the fleet and its
    /// VMs are re-admitted across the survivors.
    HostDrain {
        /// The retiring host.
        host: usize,
    },
    /// The host's next state verification fails once, exercising the
    /// engine's snapshot-restore + repack fallback.
    VerifyFault {
        /// The host whose next verification fails.
        host: usize,
    },
}

impl FleetFault {
    /// The targeted host.
    pub fn host(self) -> usize {
        match self {
            FleetFault::HostCrash { host }
            | FleetFault::HostDrain { host }
            | FleetFault::VerifyFault { host } => host,
        }
    }

    /// Stable kind name (`host-crash`, `host-drain`, `verify-fault`).
    pub fn name(self) -> &'static str {
        match self {
            FleetFault::HostCrash { .. } => "host-crash",
            FleetFault::HostDrain { .. } => "host-drain",
            FleetFault::VerifyFault { .. } => "verify-fault",
        }
    }
}

/// A fault scheduled at a replay ticket: it fires immediately before
/// the work item with index `at`; tickets at or past the end of the
/// replayed items fire in the end-of-replay flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFleetFault {
    /// The work-item index the fault fires before.
    pub at: u64,
    /// What happens.
    pub fault: FleetFault,
}

/// Shape of a generated fault plan: how many faults over how many
/// work-item tickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetFaultSpec {
    /// Number of faults to draw.
    pub count: usize,
    /// Tickets are drawn uniformly from `0..horizon` (clamped to at
    /// least 1).
    pub horizon: u64,
}

impl FleetFaultSpec {
    /// A spec of `count` faults over `horizon` tickets.
    pub fn new(count: usize, horizon: u64) -> Self {
        FleetFaultSpec { count, horizon }
    }
}

/// A replayable schedule of fleet faults, kept sorted by ticket.
///
/// Build one explicitly with [`FleetFaultPlan::inject`] or draw one
/// from a seed with [`FleetFaultPlan::generate`]; either way the same
/// inputs produce the same plan, so a fault campaign is reproducible
/// from `(trace, seed)` alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetFaultPlan {
    faults: Vec<ScheduledFleetFault>,
}

impl FleetFaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FleetFaultPlan::default()
    }

    /// Adds a fault firing before work item `at`, keeping the plan
    /// sorted by ticket (stable, so equal-ticket faults keep insertion
    /// order).
    pub fn inject(mut self, at: u64, fault: FleetFault) -> Self {
        self.faults.push(ScheduledFleetFault { at, fault });
        self.faults.sort_by_key(|f| f.at);
        self
    }

    /// The scheduled faults, in firing order.
    pub fn faults(&self) -> &[ScheduledFleetFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Draws a plan of `spec.count` faults for a `hosts`-host fleet
    /// from `seed`. Kinds and targets are resolved in ticket order
    /// against a live-host set, so generated plans are valid by
    /// construction: crashes and drains never target a dead host and
    /// always leave a survivor (when only one host remains alive, the
    /// draw degrades to a transient verify fault on it).
    pub fn generate(seed: u64, hosts: usize, spec: &FleetFaultSpec) -> Self {
        assert!(hosts >= 1, "a fleet needs at least one host");
        let mut rng = DetRng::seed_from_u64(seed);
        let mut draws: Vec<(u64, u32, u64)> = (0..spec.count)
            .map(|_| {
                let at = rng.gen_range(0u64..spec.horizon.max(1));
                let kind = rng.gen_range(0u32..3);
                let roll = rng.gen_range(0u64..1 << 48);
                (at, kind, roll)
            })
            .collect();
        draws.sort_by_key(|&(at, _, _)| at);
        let mut alive: Vec<usize> = (0..hosts).collect();
        let mut faults = Vec::with_capacity(draws.len());
        for (at, kind, roll) in draws {
            let fault = match kind {
                0 | 1 if alive.len() > 1 => {
                    let victim = alive.remove((roll % alive.len() as u64) as usize);
                    if kind == 0 {
                        FleetFault::HostCrash { host: victim }
                    } else {
                        FleetFault::HostDrain { host: victim }
                    }
                }
                _ => FleetFault::VerifyFault {
                    host: alive[(roll % alive.len() as u64) as usize],
                },
            };
            faults.push(ScheduledFleetFault { at, fault });
        }
        FleetFaultPlan { faults }
    }

    /// Validates the plan against a `hosts`-host fleet: every target
    /// must be in range and alive when its fault fires, and no crash
    /// or drain may remove the last alive host.
    pub fn validate(&self, hosts: usize) -> Result<(), AllocError> {
        let mut alive = vec![true; hosts];
        let mut alive_count = hosts;
        for (index, scheduled) in self.faults.iter().enumerate() {
            let host = scheduled.fault.host();
            if host >= hosts {
                return Err(AllocError::FaultPlan {
                    detail: format!(
                        "fault {index} targets host {host}, but the fleet has {hosts} hosts"
                    ),
                });
            }
            if !alive[host] {
                return Err(AllocError::FaultPlan {
                    detail: format!(
                        "fault {index} ({}) targets host {host}, which an earlier fault already \
                         removed",
                        scheduled.fault.name()
                    ),
                });
            }
            if matches!(
                scheduled.fault,
                FleetFault::HostCrash { .. } | FleetFault::HostDrain { .. }
            ) {
                if alive_count == 1 {
                    return Err(AllocError::FaultPlan {
                        detail: format!(
                            "fault {index} ({}) would leave the fleet with no alive host",
                            scheduled.fault.name()
                        ),
                    });
                }
                alive[host] = false;
                alive_count -= 1;
            }
        }
        Ok(())
    }
}

/// Everything a chaos replay is conditioned on beyond the trace: the
/// fault schedule and which VMs are HI-criticality.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetScenario {
    /// The fault schedule (empty ⇒ fault-free, byte-identical to the
    /// unarmed fleet).
    pub faults: FleetFaultPlan,
    /// HI-criticality VM ids, strictly increasing; every other VM is
    /// LO. HI VMs get first claim on survivor headroom during
    /// evacuation.
    pub hi_vms: Vec<usize>,
}

impl FleetScenario {
    /// A scenario from a fault plan and a HI-VM set.
    pub fn new(faults: FleetFaultPlan, hi_vms: Vec<usize>) -> Self {
        FleetScenario { faults, hi_vms }
    }

    /// Validates the fault plan against the fleet size and the HI-VM
    /// set's strictly-increasing invariant.
    pub fn validate(&self, hosts: usize) -> Result<(), AllocError> {
        self.faults.validate(hosts)?;
        if !self.hi_vms.windows(2).all(|w| w[0] < w[1]) {
            return Err(AllocError::FaultPlan {
                detail: "hi vm ids must be strictly increasing".to_string(),
            });
        }
        Ok(())
    }
}

/// An evacuated VM that exhausted its placement attempts: no survivor
/// had bookkept headroom for it within the retry budget. Reported,
/// never panicked.
#[derive(Debug, Clone, PartialEq)]
pub struct EvacuationExhausted {
    /// The VM that could not be re-placed.
    pub vm: usize,
    /// Its criticality (a HI record here means the fleet genuinely ran
    /// out of protected headroom — LO VMs never displace HI ones).
    pub criticality: Criticality,
    /// Its bookkept utilization.
    pub utilization: f64,
    /// Placement attempts made.
    pub attempts: usize,
    /// The work-item ticket at which the budget ran out.
    pub at: u64,
}

/// Fleet-level routing counters (engine counters aggregate separately
/// via [`AdmissionFleet::aggregate_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests routed (batch members count individually).
    pub routed: u64,
    /// Arrivals routed to a bookkeeping-feasible host (best fit or a
    /// fall-through).
    pub best_fit_routes: u64,
    /// Arrivals of VMs the router already owns (retries), routed to
    /// the owning host without a second charge.
    pub retry_routes: u64,
    /// Arrivals for which no host was bookkeeping-feasible (sent to
    /// the maximum-headroom host for the authoritative rejection).
    pub saturated_routes: u64,
    /// Departures/mode changes for VMs the router never saw (sent to
    /// the first alive host for the deterministic unknown-VM
    /// rejection).
    pub unowned_routes: u64,
    /// Faults fired from the armed plan (all kinds).
    pub faults_injected: u64,
    /// Host crashes fired.
    pub host_crashes: u64,
    /// Host drains fired.
    pub host_drains: u64,
    /// Transient verify failures fired.
    pub verify_faults: u64,
    /// VMs evacuated off crashed/drained hosts.
    pub evacuated_vms: u64,
    /// Evacuated VMs that were HI-criticality.
    pub evac_hi: u64,
    /// Evacuated VMs that were LO-criticality.
    pub evac_lo: u64,
    /// Evacuees re-placed on a survivor (re-admission submitted).
    pub evac_placed: u64,
    /// Placement attempts deferred for lack of survivor headroom.
    pub evac_deferred: u64,
    /// Evacuees that exhausted their attempt budget.
    pub evac_exhausted: u64,
    /// Pending evacuations cancelled because the VM departed or
    /// re-arrived on its own.
    pub evac_cancelled: u64,
}

impl FleetStats {
    /// Exports the counters under the `fleet.` prefix.
    pub fn export_metrics(&self, out: &mut MetricsRegistry) {
        out.counter_add("fleet.routed", self.routed);
        out.counter_add("fleet.best_fit_routes", self.best_fit_routes);
        out.counter_add("fleet.retry_routes", self.retry_routes);
        out.counter_add("fleet.saturated_routes", self.saturated_routes);
        out.counter_add("fleet.unowned_routes", self.unowned_routes);
        out.counter_add("fleet.faults.injected", self.faults_injected);
        out.counter_add("fleet.faults.crashes", self.host_crashes);
        out.counter_add("fleet.faults.drains", self.host_drains);
        out.counter_add("fleet.faults.verify", self.verify_faults);
        out.counter_add("fleet.evacuations.vms", self.evacuated_vms);
        out.counter_add("fleet.evacuations.hi", self.evac_hi);
        out.counter_add("fleet.evacuations.lo", self.evac_lo);
        out.counter_add("fleet.evacuations.placed", self.evac_placed);
        out.counter_add("fleet.evacuations.deferred", self.evac_deferred);
        out.counter_add("fleet.evacuations.exhausted", self.evac_exhausted);
        out.counter_add("fleet.evacuations.cancelled", self.evac_cancelled);
    }
}

/// A routed arrival not yet departed: the router's bookkeeping record
/// for one VM.
#[derive(Debug, Clone)]
struct OwnedVm {
    vm: usize,
    host: usize,
    utilization: f64,
    criticality: Criticality,
    /// The VM's most recently requested spec, retained only when a
    /// fault plan is armed (evacuation re-admits from it).
    spec: Option<VmSpec>,
}

/// An evacuee awaiting re-placement on a survivor.
#[derive(Debug, Clone)]
struct PendingEvacuation {
    vm: usize,
    utilization: f64,
    criticality: Criticality,
    spec: VmSpec,
    attempts: usize,
    ready_at: u64,
}

/// The deterministic cross-shard router: bookkept requested load per
/// host plus the VM → owning-host map, the alive-host set, and the
/// evacuation queue. See the [module docs](self) for the policy and
/// why it is outcome-independent.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    capacity: f64,
    loads: Vec<f64>,
    alive: Vec<bool>,
    owners: Vec<OwnedVm>,
    pending: Vec<PendingEvacuation>,
    hi_vms: Vec<usize>,
    retain_specs: bool,
    stats: FleetStats,
}

impl FleetRouter {
    /// A router over `hosts` empty hosts of the given platform.
    pub fn new(hosts: usize, platform: &Platform) -> Self {
        assert!(hosts >= 1, "a fleet needs at least one host");
        FleetRouter {
            capacity: platform.max_usable_cores() as f64 * (1.0 + UTILIZATION_EPS),
            loads: vec![0.0; hosts],
            alive: vec![true; hosts],
            owners: Vec::new(),
            pending: Vec::new(),
            hi_vms: Vec::new(),
            retain_specs: false,
            stats: FleetStats::default(),
        }
    }

    /// Bookkept load per host (zero for dead hosts).
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Which hosts are still alive (all, until a crash or drain
    /// fires).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Routing counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// The criticality of a VM under the armed scenario (LO unless
    /// named in the HI set).
    pub fn criticality_of(&self, vm: usize) -> Criticality {
        if self.hi_vms.binary_search(&vm).is_ok() {
            Criticality::Hi
        } else {
            Criticality::Lo
        }
    }

    fn arm(&mut self, scenario: &FleetScenario) {
        self.hi_vms = scenario.hi_vms.clone();
        // Spec retention costs a clone per arrival; only pay it when a
        // fault could actually evacuate someone.
        self.retain_specs = !scenario.faults.is_empty();
    }

    fn owner_position(&self, vm: usize) -> Option<usize> {
        self.owners.iter().position(|o| o.vm == vm)
    }

    fn first_alive(&self) -> usize {
        self.alive
            .iter()
            .position(|&a| a)
            .expect("a fleet always keeps at least one alive host")
    }

    /// Routes an arrival. A VM the router already owns (a *retry* of
    /// a still-live arrival) goes back to its owning host without a
    /// second charge — retry affinity is what lets the owning engine's
    /// rejection memo (or duplicate-id check) answer it. A fresh VM
    /// goes to the first bookkeeping-feasible alive host in canonical
    /// candidate order (ascending headroom, index on ties), else the
    /// maximum-headroom alive host, and is charged to it either way.
    pub fn route_arrival(&mut self, vm: usize, utilization: f64) -> usize {
        self.stats.routed += 1;
        if let Some(position) = self.owner_position(vm) {
            self.stats.retry_routes += 1;
            return self.owners[position].host;
        }
        // A fresh arrival of a VM awaiting evacuation re-placement
        // supersedes the pending entry (one charge, one owner).
        if let Some(position) = self.pending.iter().position(|p| p.vm == vm) {
            self.pending.remove(position);
            self.stats.evac_cancelled += 1;
        }
        let mut best_fit: Option<usize> = None;
        let mut fallback: Option<usize> = None;
        for (h, &load) in self.loads.iter().enumerate() {
            if !self.alive[h] {
                continue;
            }
            if load + utilization <= self.capacity && best_fit.is_none_or(|b| load > self.loads[b])
            {
                best_fit = Some(h);
            }
            if fallback.is_none_or(|f| load < self.loads[f]) {
                fallback = Some(h);
            }
        }
        let host = match best_fit {
            Some(h) => {
                self.stats.best_fit_routes += 1;
                h
            }
            None => {
                self.stats.saturated_routes += 1;
                fallback.expect("a fleet always keeps at least one alive host")
            }
        };
        self.loads[host] += utilization;
        let criticality = self.criticality_of(vm);
        self.owners.push(OwnedVm {
            vm,
            host,
            utilization,
            criticality,
            spec: None,
        });
        host
    }

    /// Routes a departure to the owning host and releases the charge
    /// — the *current* owner, so a VM re-placed by evacuation
    /// uncharges the survivor it lives on, not its original route.
    /// A departure for a VM still awaiting re-placement cancels the
    /// pending evacuation. Unknown VMs go to the first alive host (for
    /// the deterministic rejection).
    pub fn route_departure(&mut self, vm: usize) -> usize {
        self.stats.routed += 1;
        if let Some(position) = self.owner_position(vm) {
            let owner = self.owners.remove(position);
            self.loads[owner.host] -= owner.utilization;
            return owner.host;
        }
        if let Some(position) = self.pending.iter().position(|p| p.vm == vm) {
            // The VM departed while awaiting re-placement: nothing is
            // charged for it anywhere, so just drop the entry.
            self.pending.remove(position);
            self.stats.evac_cancelled += 1;
            return self.first_alive();
        }
        self.stats.unowned_routes += 1;
        self.first_alive()
    }

    /// Routes a mode change to the owning host and re-charges it with
    /// the new mode's utilization; unknown VMs go to the first alive
    /// host.
    pub fn route_mode(&mut self, vm: usize, utilization: f64) -> usize {
        self.stats.routed += 1;
        match self.owner_position(vm) {
            Some(position) => {
                let host = self.owners[position].host;
                self.loads[host] += utilization - self.owners[position].utilization;
                self.owners[position].utilization = utilization;
                host
            }
            None => {
                self.stats.unowned_routes += 1;
                self.first_alive()
            }
        }
    }

    /// Routes one request (the shared dispatch used by the serial
    /// fleet and the parallel routing pass). When a fault plan is
    /// armed this also retains the VM's most recently requested spec,
    /// which is what an evacuation re-admits.
    pub fn route(&mut self, request: &AdmissionRequest) -> usize {
        match request {
            AdmissionRequest::Arrival(vm) => {
                let host = self.route_arrival(vm.id().0, vm.reference_utilization());
                if self.retain_specs {
                    if let Some(owner) = self.owners.iter_mut().find(|o| o.vm == vm.id().0) {
                        if owner.spec.is_none() {
                            owner.spec = Some(vm.clone());
                        }
                    }
                }
                host
            }
            AdmissionRequest::Departure(id) => self.route_departure(id.0),
            AdmissionRequest::ModeChange(vm) => {
                let host = self.route_mode(vm.id().0, vm.reference_utilization());
                if self.retain_specs {
                    if let Some(owner) = self.owners.iter_mut().find(|o| o.vm == vm.id().0) {
                        owner.spec = Some(vm.clone());
                    }
                }
                host
            }
        }
    }

    /// Bookkeeping for a one-host batch handed verbatim to the
    /// engine's own batch path: charge arrivals and route the rest, in
    /// the same order the engine processes them, without choosing
    /// hosts (there is only one).
    fn route_batch_bookkeeping(&mut self, requests: &[AdmissionRequest]) {
        for request in requests {
            self.route(request);
        }
    }

    /// Removes `host` from the fleet and queues its VMs for
    /// re-placement, criticality-major (HI first, then utilization
    /// descending, id ascending). Returns the evacuees' ids in that
    /// order (a drain departs them from the dying engine in it).
    fn evacuate(&mut self, host: usize, now: u64) -> Vec<usize> {
        self.alive[host] = false;
        self.loads[host] = 0.0;
        let mut evacuees: Vec<OwnedVm> = Vec::new();
        let mut kept: Vec<OwnedVm> = Vec::new();
        for owner in self.owners.drain(..) {
            if owner.host == host {
                evacuees.push(owner);
            } else {
                kept.push(owner);
            }
        }
        self.owners = kept;
        evacuees.sort_by(|a, b| {
            b.criticality
                .cmp(&a.criticality)
                .then_with(|| {
                    b.utilization
                        .partial_cmp(&a.utilization)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.vm.cmp(&b.vm))
        });
        self.stats.evacuated_vms += evacuees.len() as u64;
        let order: Vec<usize> = evacuees.iter().map(|o| o.vm).collect();
        for owner in evacuees {
            match owner.criticality {
                Criticality::Hi => self.stats.evac_hi += 1,
                Criticality::Lo => self.stats.evac_lo += 1,
            }
            self.pending.push(PendingEvacuation {
                vm: owner.vm,
                utilization: owner.utilization,
                criticality: owner.criticality,
                spec: owner
                    .spec
                    .expect("specs are retained whenever a fault plan is armed"),
                attempts: 0,
                ready_at: now,
            });
        }
        // Keep the queue criticality-major across evacuation events
        // too (stable sort preserves within-class order).
        self.pending
            .sort_by_key(|p| std::cmp::Reverse(p.criticality));
        order
    }

    /// The earliest ticket at which a pending evacuee is ready for
    /// another placement attempt.
    fn earliest_pending(&self) -> Option<u64> {
        self.pending.iter().map(|p| p.ready_at).min()
    }

    /// Attempts to place every ready evacuee on a best-fit survivor
    /// with bookkept headroom. Returns `(host, spec)` placements (the
    /// caller submits the re-admissions); deferrals back off linearly
    /// and exhaust into `exhausted` after the attempt budget.
    fn pump_evacuations(
        &mut self,
        now: u64,
        policy: EvacuationPolicy,
        exhausted: &mut Vec<EvacuationExhausted>,
    ) -> Vec<(usize, VmSpec)> {
        let mut placements = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].ready_at > now {
                i += 1;
                continue;
            }
            let utilization = self.pending[i].utilization;
            let mut best: Option<usize> = None;
            for (h, &load) in self.loads.iter().enumerate() {
                if self.alive[h]
                    && load + utilization <= self.capacity
                    && best.is_none_or(|b| load > self.loads[b])
                {
                    best = Some(h);
                }
            }
            match best {
                Some(host) => {
                    let entry = self.pending.remove(i);
                    self.stats.evac_placed += 1;
                    self.loads[host] += utilization;
                    self.owners.push(OwnedVm {
                        vm: entry.vm,
                        host,
                        utilization,
                        criticality: entry.criticality,
                        spec: Some(entry.spec.clone()),
                    });
                    placements.push((host, entry.spec));
                }
                None => {
                    self.stats.evac_deferred += 1;
                    self.pending[i].attempts += 1;
                    if self.pending[i].attempts >= policy.max_attempts.max(1) {
                        let entry = self.pending.remove(i);
                        self.stats.evac_exhausted += 1;
                        exhausted.push(EvacuationExhausted {
                            vm: entry.vm,
                            criticality: entry.criticality,
                            utilization: entry.utilization,
                            attempts: entry.attempts,
                            at: now,
                        });
                    } else {
                        self.pending[i].ready_at =
                            now + policy.backoff * self.pending[i].attempts as u64;
                        i += 1;
                    }
                }
            }
        }
        placements
    }
}

/// One merged-log entry: the owning host plus the engine's decision
/// with its index rewritten to the fleet-global ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDecision {
    /// The host whose engine served the request.
    pub host: usize,
    /// The engine decision, re-indexed into the merged fleet log.
    pub decision: AdmissionDecision,
    /// True for decisions synthesized by an evacuation (a drain's
    /// departures off the dying host and re-admission arrivals on
    /// survivors).
    pub evac: bool,
}

impl FleetDecision {
    /// The merged-log line: the engine's byte-stable line, with the
    /// owning host appended when the fleet has more than one (so a
    /// one-host fleet log is byte-identical to the engine log), and
    /// ` evac` appended only on evacuation-synthesized decisions (so
    /// fault-free logs are byte-identical to the unarmed fleet's).
    pub fn log_line(&self, hosts: usize) -> String {
        let mut line = if hosts > 1 {
            format!("{} host={}", self.decision.log_line(), self.host)
        } else {
            self.decision.log_line()
        };
        if self.evac {
            line.push_str(" evac");
        }
        line
    }
}

/// One unit of replayable fleet work: a single request or a batch of
/// concurrent arrivals (mirroring the trace model, without depending
/// on it).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetWorkItem {
    /// One request on its own.
    Single(AdmissionRequest),
    /// Concurrent arrivals admitted as one order-independent batch.
    Batch(Vec<AdmissionRequest>),
}

/// Work bucketed for one host by the parallel routing pass.
enum HostWork {
    Single(u64, bool, AdmissionRequest),
    Batch(Vec<u64>, Vec<AdmissionRequest>),
    /// The host crashed: rebuild its engine empty.
    Reset,
    /// The host's next state verification fails once.
    InjectVerifyFault,
}

/// Where the shared replay driver sends per-host work: the serial
/// fleet executes it immediately, the parallel routing pass records it
/// into per-host plans.
trait HostExecutor {
    fn single(&mut self, host: usize, ticket: u64, request: AdmissionRequest, evac: bool);
    fn batch(&mut self, host: usize, tickets: Vec<u64>, members: Vec<AdmissionRequest>);
    fn reset(&mut self, host: usize);
    fn inject_verify_fault(&mut self, host: usize);
}

struct SerialHostExec<'a> {
    platform: Platform,
    engine_config: AdmissionConfig,
    engines: &'a mut Vec<AdmissionEngine>,
    decisions: &'a mut Vec<FleetDecision>,
}

impl HostExecutor for SerialHostExec<'_> {
    fn single(&mut self, host: usize, ticket: u64, request: AdmissionRequest, evac: bool) {
        let mut decision = self.engines[host].submit(request).clone();
        decision.index = ticket;
        self.decisions.push(FleetDecision {
            host,
            decision,
            evac,
        });
    }

    fn batch(&mut self, host: usize, tickets: Vec<u64>, members: Vec<AdmissionRequest>) {
        let batch = self.engines[host].submit_batch(members).to_vec();
        debug_assert_eq!(batch.len(), tickets.len());
        for (&ticket, mut decision) in tickets.iter().zip(batch) {
            decision.index = ticket;
            self.decisions.push(FleetDecision {
                host,
                decision,
                evac: false,
            });
        }
    }

    fn reset(&mut self, host: usize) {
        self.engines[host] = AdmissionEngine::new(self.platform, self.engine_config);
    }

    fn inject_verify_fault(&mut self, host: usize) {
        self.engines[host].inject_verify_failure();
    }
}

struct PlanHostExec {
    plan: Vec<Vec<HostWork>>,
}

impl HostExecutor for PlanHostExec {
    fn single(&mut self, host: usize, ticket: u64, request: AdmissionRequest, evac: bool) {
        self.plan[host].push(HostWork::Single(ticket, evac, request));
    }

    fn batch(&mut self, host: usize, tickets: Vec<u64>, members: Vec<AdmissionRequest>) {
        self.plan[host].push(HostWork::Batch(tickets, members));
    }

    fn reset(&mut self, host: usize) {
        self.plan[host].push(HostWork::Reset);
    }

    fn inject_verify_fault(&mut self, host: usize) {
        self.plan[host].push(HostWork::InjectVerifyFault);
    }
}

/// The shared replay driver: routes work items, fires due faults at
/// item boundaries, and pumps the evacuation queue — identically for
/// the serial fleet and the parallel routing pass, because every
/// decision here reads only router bookkeeping (see the [module
/// docs](self)).
struct Drive<'a, E: HostExecutor> {
    router: &'a mut FleetRouter,
    plan: &'a FleetFaultPlan,
    policy: EvacuationPolicy,
    hosts: usize,
    item_cursor: &'a mut u64,
    fault_cursor: &'a mut usize,
    ticket: u64,
    exhausted: &'a mut Vec<EvacuationExhausted>,
    exec: &'a mut E,
}

impl<E: HostExecutor> Drive<'_, E> {
    fn run(mut self, items: &[FleetWorkItem]) -> u64 {
        for item in items {
            self.barrier(*self.item_cursor);
            match item {
                FleetWorkItem::Single(request) => {
                    let host = self.router.route(request);
                    self.single(host, request.clone(), false);
                }
                FleetWorkItem::Batch(requests) => self.batch(requests),
            }
            *self.item_cursor += 1;
        }
        self.flush();
        self.ticket
    }

    fn single(&mut self, host: usize, request: AdmissionRequest, evac: bool) {
        self.exec.single(host, self.ticket, request, evac);
        self.ticket += 1;
    }

    fn batch(&mut self, requests: &[AdmissionRequest]) {
        if self.hosts == 1 {
            self.router.route_batch_bookkeeping(requests);
            let tickets: Vec<u64> = (self.ticket..self.ticket + requests.len() as u64).collect();
            self.ticket += requests.len() as u64;
            self.exec.batch(0, tickets, requests.to_vec());
            return;
        }
        let mut arrivals: Vec<AdmissionRequest> = Vec::new();
        for request in requests {
            match request {
                AdmissionRequest::Arrival(_) => arrivals.push(request.clone()),
                // Mirror the engine: anything else in a batch is
                // processed in place, before the arrivals.
                other => {
                    let host = self.router.route(other);
                    self.single(host, other.clone(), false);
                }
            }
        }
        arrivals.sort_by(|a, b| match (a, b) {
            (AdmissionRequest::Arrival(x), AdmissionRequest::Arrival(y)) => {
                canonical_vm_order(x, y)
            }
            _ => unreachable!("only arrivals are collected"),
        });
        // Route in canonical order, bucketing per host while keeping
        // each member's global ticket.
        let mut buckets: Vec<(usize, Vec<u64>, Vec<AdmissionRequest>)> = Vec::new();
        for request in arrivals {
            let host = self.router.route(&request);
            match buckets.iter_mut().find(|(h, _, _)| *h == host) {
                Some((_, tickets, members)) => {
                    tickets.push(self.ticket);
                    members.push(request);
                }
                None => buckets.push((host, vec![self.ticket], vec![request])),
            }
            self.ticket += 1;
        }
        for (host, tickets, members) in buckets {
            self.exec.batch(host, tickets, members);
        }
    }

    /// Fires every fault due at `now`, then gives ready evacuees a
    /// placement attempt. A no-op when no plan is armed.
    fn barrier(&mut self, now: u64) {
        while *self.fault_cursor < self.plan.len()
            && self.plan.faults()[*self.fault_cursor].at <= now
        {
            let scheduled = self.plan.faults()[*self.fault_cursor];
            *self.fault_cursor += 1;
            self.fire(scheduled.fault, now);
        }
        self.pump(now);
    }

    fn fire(&mut self, fault: FleetFault, now: u64) {
        self.router.stats.faults_injected += 1;
        match fault {
            FleetFault::HostCrash { host } => {
                self.router.stats.host_crashes += 1;
                // Abrupt loss: the engine state is gone before anyone
                // can depart gracefully.
                self.exec.reset(host);
                self.router.evacuate(host, now);
            }
            FleetFault::HostDrain { host } => {
                self.router.stats.host_drains += 1;
                // Graceful retirement: the dying engine sees each VM
                // depart (logged as evac departures), then the host
                // takes no further work.
                let departing = self.router.evacuate(host, now);
                for vm in departing {
                    self.single(host, AdmissionRequest::Departure(VmId(vm)), true);
                }
            }
            FleetFault::VerifyFault { host } => {
                self.router.stats.verify_faults += 1;
                self.exec.inject_verify_fault(host);
            }
        }
    }

    fn pump(&mut self, now: u64) {
        for (host, spec) in self
            .router
            .pump_evacuations(now, self.policy, self.exhausted)
        {
            self.single(host, AdmissionRequest::Arrival(spec), true);
        }
    }

    /// After the last item: fires any faults scheduled past the end,
    /// then drains the evacuation queue to completion (placed or
    /// exhausted — bounded by the attempt budget, so this terminates).
    fn flush(&mut self) {
        let mut now = *self.item_cursor;
        while *self.fault_cursor < self.plan.len() {
            let scheduled = self.plan.faults()[*self.fault_cursor];
            *self.fault_cursor += 1;
            now = now.max(scheduled.at);
            self.fire(scheduled.fault, now);
            self.pump(now);
        }
        while let Some(ready) = self.router.earliest_pending() {
            now = now.max(ready);
            self.pump(now);
        }
    }
}

/// The sharded admission controller. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionFleet {
    platform: Platform,
    config: FleetConfig,
    engines: Vec<AdmissionEngine>,
    router: FleetRouter,
    decisions: Vec<FleetDecision>,
    next_index: u64,
    scenario: FleetScenario,
    exhausted: Vec<EvacuationExhausted>,
    item_cursor: u64,
    fault_cursor: usize,
}

impl AdmissionFleet {
    /// Creates a fleet of empty hosts.
    pub fn new(platform: Platform, config: FleetConfig) -> Self {
        assert!(config.hosts >= 1, "a fleet needs at least one host");
        AdmissionFleet {
            platform,
            config,
            engines: (0..config.hosts)
                .map(|_| AdmissionEngine::new(platform, config.engine))
                .collect(),
            router: FleetRouter::new(config.hosts, &platform),
            decisions: Vec::new(),
            next_index: 0,
            scenario: FleetScenario::default(),
            exhausted: Vec::new(),
            item_cursor: 0,
            fault_cursor: 0,
        }
    }

    /// The platform every host runs.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The per-host engines, indexed by host.
    pub fn engines(&self) -> &[AdmissionEngine] {
        &self.engines
    }

    /// The router (bookkept loads, alive set, and routing counters).
    pub fn router(&self) -> &FleetRouter {
        &self.router
    }

    /// The merged decision log so far, in ticket order.
    pub fn decisions(&self) -> &[FleetDecision] {
        &self.decisions
    }

    /// The armed scenario (default: fault-free, no HI VMs).
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// Evacuated VMs that exhausted their placement attempts, in the
    /// order they ran out.
    pub fn evacuation_failures(&self) -> &[EvacuationExhausted] {
        &self.exhausted
    }

    /// Arms a fault scenario. Must be called before the first request;
    /// the scenario is validated here (the validated-at-attach rule),
    /// so replay never encounters an invalid fault. Faults fire at
    /// [`Self::replay`] item boundaries (direct [`Self::submit`] calls
    /// do not advance the fault clock).
    pub fn arm(&mut self, scenario: FleetScenario) -> Result<(), AllocError> {
        if self.next_index != 0 || !self.decisions.is_empty() {
            return Err(AllocError::FaultPlan {
                detail: "a scenario must be armed before the first request".to_string(),
            });
        }
        scenario.validate(self.config.hosts)?;
        self.router.arm(&scenario);
        self.scenario = scenario;
        Ok(())
    }

    /// Renders the merged decision log, one byte-stable line per
    /// decision, newline-terminated. With one host this is exactly the
    /// engine's `log_text()`.
    pub fn log_text(&self) -> String {
        let mut text = String::new();
        for d in &self.decisions {
            text.push_str(&d.log_line(self.config.hosts));
            text.push('\n');
        }
        text
    }

    /// Engine counters summed across hosts.
    pub fn aggregate_stats(&self) -> AdmissionStats {
        self.engines
            .iter()
            .fold(AdmissionStats::default(), |sum, e| sum.merged(e.stats()))
    }

    /// Total admitted reference utilization across hosts (ground
    /// truth, not the router's bookkeeping). The `+ 0.0` normalizes
    /// the empty sum, which is `-0.0`.
    pub fn admitted_load(&self) -> f64 {
        self.engines
            .iter()
            .flat_map(|e| e.working_set())
            .map(|vm| vm.reference_utilization())
            .sum::<f64>()
            + 0.0
    }

    /// Exports fleet routing/fault counters, aggregated `admission.*`
    /// engine counters, and fleet-level gauges.
    pub fn export_metrics(&self, out: &mut MetricsRegistry) {
        self.router.stats.export_metrics(out);
        self.aggregate_stats().export_metrics(out);
        out.gauge_set("fleet.hosts", self.config.hosts as f64);
        out.gauge_set("fleet.load", self.admitted_load());
        out.gauge_set(
            "fleet.vms",
            self.engines
                .iter()
                .map(|e| e.working_set().len())
                .sum::<usize>() as f64,
        );
    }

    fn push(&mut self, host: usize, mut decision: AdmissionDecision) -> &FleetDecision {
        decision.index = self.next_index;
        self.next_index += 1;
        self.decisions.push(FleetDecision {
            host,
            decision,
            evac: false,
        });
        self.decisions.last().expect("just pushed")
    }

    /// Routes and serves one request.
    pub fn submit(&mut self, request: AdmissionRequest) -> &FleetDecision {
        let host = self.router.route(&request);
        let decision = self.engines[host].submit(request).clone();
        self.push(host, decision)
    }

    /// Routes and serves a batch of concurrent arrivals: members are
    /// put in canonical order, routed in that order, and each host's
    /// members are admitted as one engine sub-batch. Returns the
    /// batch's merged decisions in canonical order.
    pub fn submit_batch(&mut self, requests: Vec<AdmissionRequest>) -> &[FleetDecision] {
        let first = self.decisions.len();
        if self.config.hosts == 1 {
            // Degenerate to the engine's own batch path so even the
            // per-engine counters match the plain engine exactly.
            self.router.route_batch_bookkeeping(&requests);
            let decisions: Vec<AdmissionDecision> = self.engines[0].submit_batch(requests).to_vec();
            for decision in decisions {
                self.push(0, decision);
            }
            return &self.decisions[first..];
        }
        let mut arrivals: Vec<AdmissionRequest> = Vec::new();
        for request in requests {
            match request {
                AdmissionRequest::Arrival(_) => arrivals.push(request),
                // Mirror the engine: anything else in a batch is
                // processed in place, before the arrivals.
                other => {
                    self.submit(other);
                }
            }
        }
        arrivals.sort_by(|a, b| match (a, b) {
            (AdmissionRequest::Arrival(x), AdmissionRequest::Arrival(y)) => {
                canonical_vm_order(x, y)
            }
            _ => unreachable!("only arrivals are collected"),
        });
        // Route in canonical order, bucketing per host while keeping
        // each member's position in the canonical sequence.
        let mut per_host: Vec<(usize, Vec<usize>, Vec<AdmissionRequest>)> = Vec::new();
        for (position, request) in arrivals.into_iter().enumerate() {
            let host = self.router.route(&request);
            match per_host.iter_mut().find(|(h, _, _)| *h == host) {
                Some((_, positions, members)) => {
                    positions.push(position);
                    members.push(request);
                }
                None => per_host.push((host, vec![position], vec![request])),
            }
        }
        per_host.sort_by_key(|&(h, _, _)| h);
        let mut ordered: Vec<(usize, usize, AdmissionDecision)> = Vec::new();
        for (host, positions, members) in per_host {
            let decisions = self.engines[host].submit_batch(members).to_vec();
            debug_assert_eq!(decisions.len(), positions.len());
            for (position, decision) in positions.into_iter().zip(decisions) {
                ordered.push((position, host, decision));
            }
        }
        ordered.sort_by_key(|&(position, _, _)| position);
        for (_, host, decision) in ordered {
            self.push(host, decision);
        }
        &self.decisions[first..]
    }

    /// Serially replays pre-materialized work items (the canonical
    /// fleet semantics the parallel replay is pinned against), firing
    /// any armed faults at item boundaries and resolving every
    /// evacuation (placed or exhausted) before returning.
    pub fn replay(&mut self, items: &[FleetWorkItem]) {
        let first = self.decisions.len();
        let AdmissionFleet {
            platform,
            config,
            engines,
            router,
            decisions,
            next_index,
            scenario,
            exhausted,
            item_cursor,
            fault_cursor,
        } = self;
        let mut exec = SerialHostExec {
            platform: *platform,
            engine_config: config.engine,
            engines,
            decisions,
        };
        *next_index = Drive {
            router,
            plan: &scenario.faults,
            policy: config.evacuation,
            hosts: config.hosts,
            item_cursor,
            fault_cursor,
            ticket: *next_index,
            exhausted,
            exec: &mut exec,
        }
        .run(items);
        // Batch buckets execute host-by-host; restore global ticket
        // order over the newly appended range.
        self.decisions[first..].sort_by_key(|d| d.decision.index);
    }

    /// Replays `items` over a fresh fleet in parallel: a serial
    /// routing pass fixes every decision's host and global ticket,
    /// worker threads claim whole hosts from an atomic counter and
    /// replay each host's subsequence on a private engine, and the
    /// decision vectors merge once after the join in ticket order.
    ///
    /// The result is bit-identical to `new` + [`Self::replay`] at
    /// every `threads` value (pinned by the fleet conformance suite).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn replay_parallel(
        platform: Platform,
        config: FleetConfig,
        items: &[FleetWorkItem],
        threads: usize,
    ) -> AdmissionFleet {
        Self::replay_parallel_armed(platform, config, FleetScenario::default(), items, threads)
            .expect("the empty scenario is always valid")
    }

    /// [`Self::replay_parallel`] with a fault scenario armed: the
    /// routing pass additionally fires the fault plan and schedules
    /// every evacuation — all from router bookkeeping, so the per-host
    /// plans (including engine resets, injected verify faults, and
    /// evac re-admissions) are fixed before any engine runs, and the
    /// result stays bit-identical to the armed serial fleet at every
    /// thread count.
    pub fn replay_parallel_armed(
        platform: Platform,
        config: FleetConfig,
        scenario: FleetScenario,
        items: &[FleetWorkItem],
        threads: usize,
    ) -> Result<AdmissionFleet, AllocError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        assert!(threads > 0, "need at least one thread");
        let hosts = config.hosts;
        scenario.validate(hosts)?;
        // Routing pass: identical calls, in identical order, to what
        // the serial fleet makes — so bookkept loads, owners, fault
        // firings, and chosen hosts agree by construction.
        let mut router = FleetRouter::new(hosts, &platform);
        router.arm(&scenario);
        let mut exec = PlanHostExec {
            plan: (0..hosts).map(|_| Vec::new()).collect(),
        };
        let mut item_cursor = 0u64;
        let mut fault_cursor = 0usize;
        let mut exhausted = Vec::new();
        let ticket = Drive {
            router: &mut router,
            plan: &scenario.faults,
            policy: config.evacuation,
            hosts,
            item_cursor: &mut item_cursor,
            fault_cursor: &mut fault_cursor,
            ticket: 0,
            exhausted: &mut exhausted,
            exec: &mut exec,
        }
        .run(items);
        let plan = exec.plan;
        // Parallel pass: whole hosts are the work units, claimed from
        // an atomic ticket counter; everything mutable is per-thread
        // and merges once after the join (the sweep executor pattern).
        let next = AtomicUsize::new(0);
        let plan_ref = &plan;
        let mut host_results: Vec<(usize, AdmissionEngine, Vec<FleetDecision>)> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads.min(hosts))
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let host = next.fetch_add(1, Ordering::Relaxed);
                                if host >= hosts {
                                    break;
                                }
                                let mut engine = AdmissionEngine::new(platform, config.engine);
                                let mut decisions = Vec::new();
                                for work in &plan_ref[host] {
                                    match work {
                                        HostWork::Single(ticket, evac, request) => {
                                            let mut decision =
                                                engine.submit(request.clone()).clone();
                                            decision.index = *ticket;
                                            decisions.push(FleetDecision {
                                                host,
                                                decision,
                                                evac: *evac,
                                            });
                                        }
                                        HostWork::Batch(tickets, members) => {
                                            let batch =
                                                engine.submit_batch(members.clone()).to_vec();
                                            debug_assert_eq!(batch.len(), tickets.len());
                                            for (ticket, mut decision) in
                                                tickets.iter().zip(batch)
                                            {
                                                decision.index = *ticket;
                                                decisions.push(FleetDecision {
                                                    host,
                                                    decision,
                                                    evac: false,
                                                });
                                            }
                                        }
                                        HostWork::Reset => {
                                            engine =
                                                AdmissionEngine::new(platform, config.engine);
                                        }
                                        HostWork::InjectVerifyFault => {
                                            engine.inject_verify_failure();
                                        }
                                    }
                                }
                                mine.push((host, engine, decisions));
                            }
                            mine
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("fleet worker panicked"))
                    .collect()
            });
        host_results.sort_by_key(|&(host, _, _)| host);
        let mut engines: Vec<AdmissionEngine> = Vec::with_capacity(hosts);
        let mut decisions: Vec<FleetDecision> = Vec::new();
        for (_, engine, host_decisions) in host_results {
            engines.push(engine);
            decisions.extend(host_decisions);
        }
        decisions.sort_by_key(|d| d.decision.index);
        Ok(AdmissionFleet {
            platform,
            config,
            engines,
            router,
            decisions,
            next_index: ticket,
            scenario,
            exhausted,
            item_cursor,
            fault_cursor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionVerdict;
    use vc2m_model::{Task, TaskId, TaskSet, VmId, VmSpec, WcetSurface};

    fn vm(id: usize, wcet_ms: f64, n: usize) -> VmSpec {
        let space = Platform::platform_a().resources();
        let tasks: TaskSet = (0..n)
            .map(|i| {
                Task::new(
                    TaskId(id * 1000 + i),
                    10.0,
                    WcetSurface::flat(&space, wcet_ms).unwrap(),
                )
                .unwrap()
            })
            .collect();
        VmSpec::new(VmId(id), tasks).unwrap()
    }

    fn fleet(hosts: usize) -> AdmissionFleet {
        AdmissionFleet::new(Platform::platform_a(), FleetConfig::new(hosts, 42))
    }

    #[test]
    fn one_host_fleet_matches_plain_engine() {
        let mut f = fleet(1);
        let mut e = AdmissionEngine::new(Platform::platform_a(), AdmissionConfig::new(42));
        for request in [
            AdmissionRequest::Arrival(vm(1, 2.0, 2)),
            AdmissionRequest::Arrival(vm(2, 3.0, 3)),
            AdmissionRequest::Departure(VmId(1)),
            AdmissionRequest::ModeChange(vm(2, 1.0, 1)),
            AdmissionRequest::Departure(VmId(9)),
        ] {
            f.submit(request.clone());
            e.submit(request);
        }
        f.submit_batch(vec![
            AdmissionRequest::Arrival(vm(5, 2.0, 1)),
            AdmissionRequest::Arrival(vm(6, 1.0, 2)),
        ]);
        e.submit_batch(vec![
            AdmissionRequest::Arrival(vm(5, 2.0, 1)),
            AdmissionRequest::Arrival(vm(6, 1.0, 2)),
        ]);
        assert_eq!(f.log_text(), e.log_text());
        assert_eq!(f.engines()[0].allocation(), e.allocation());
        assert_eq!(&f.aggregate_stats(), e.stats());
    }

    #[test]
    fn arrivals_spread_over_hosts_and_departures_route_home() {
        let mut f = fleet(2);
        // Each VM loads 1.5 cores of a 4-core host; bookkeeping packs
        // two onto host 0 (3.0 <= 4) and spills the third (4.5 > 4).
        let d1 = f.submit(AdmissionRequest::Arrival(vm(1, 5.0, 3))).clone();
        let d2 = f.submit(AdmissionRequest::Arrival(vm(2, 5.0, 3))).clone();
        let d3 = f.submit(AdmissionRequest::Arrival(vm(3, 5.0, 3))).clone();
        assert!(matches!(
            d1.decision.verdict,
            AdmissionVerdict::Admitted { .. }
        ));
        assert!(matches!(
            d2.decision.verdict,
            AdmissionVerdict::Admitted { .. }
        ));
        assert_eq!(d1.host, 0);
        assert_eq!(d2.host, 0, "best fit packs the tighter host first");
        assert_eq!(d3.host, 1, "bookkept capacity falls through to host 1");
        let d = f.submit(AdmissionRequest::Departure(VmId(2))).clone();
        assert_eq!(d.host, 0, "departure routes to the owning host");
        assert_eq!(d.decision.verdict, AdmissionVerdict::Departed);
        for engine in f.engines() {
            if !engine.working_set().is_empty() {
                engine.allocation().verify(f.platform()).unwrap();
            }
        }
    }

    #[test]
    fn merged_log_indices_are_global_and_lines_carry_hosts() {
        let mut f = fleet(2);
        f.submit(AdmissionRequest::Arrival(vm(1, 6.0, 3)));
        f.submit(AdmissionRequest::Arrival(vm(2, 6.0, 3)));
        f.submit(AdmissionRequest::Arrival(vm(3, 6.0, 3)));
        let text = f.log_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("#00000 "), "{}", lines[0]);
        assert!(lines[2].starts_with("#00002 "), "{}", lines[2]);
        assert!(lines[0].ends_with("host=0"), "{}", lines[0]);
        assert!(lines[2].ends_with("host=1"), "{}", lines[2]);
    }

    #[test]
    fn parallel_replay_matches_serial_at_every_thread_count() {
        let items: Vec<FleetWorkItem> = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(2, 4.0, 3))),
            FleetWorkItem::Batch(vec![
                AdmissionRequest::Arrival(vm(3, 2.0, 2)),
                AdmissionRequest::Arrival(vm(4, 5.0, 2)),
            ]),
            FleetWorkItem::Single(AdmissionRequest::Departure(VmId(2))),
            FleetWorkItem::Single(AdmissionRequest::ModeChange(vm(1, 2.0, 2))),
        ];
        let platform = Platform::platform_a();
        let config = FleetConfig::new(3, 42);
        let mut serial = AdmissionFleet::new(platform, config);
        serial.replay(&items);
        for threads in [1, 2, 8] {
            let parallel = AdmissionFleet::replay_parallel(platform, config, &items, threads);
            assert_eq!(parallel.log_text(), serial.log_text(), "threads={threads}");
            assert_eq!(parallel.aggregate_stats(), serial.aggregate_stats());
            assert_eq!(parallel.router().loads(), serial.router().loads());
            for (a, b) in parallel.engines().iter().zip(serial.engines()) {
                assert_eq!(a.allocation(), b.allocation());
            }
        }
    }

    #[test]
    fn fleet_metrics_families_export() {
        let mut f = fleet(2);
        f.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let mut registry = MetricsRegistry::new();
        f.export_metrics(&mut registry);
        assert_eq!(registry.gauge("fleet.hosts"), Some(2.0));
        assert_eq!(registry.counter("fleet.routed"), Some(1));
        assert_eq!(registry.counter("admission.requests"), Some(1));
        assert_eq!(registry.counter("fleet.faults.injected"), Some(0));
        assert_eq!(registry.counter("fleet.evacuations.vms"), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        fleet(0);
    }

    #[test]
    fn generated_fault_plans_are_deterministic_and_valid() {
        let spec = FleetFaultSpec::new(5, 100);
        for seed in 0..24 {
            let a = FleetFaultPlan::generate(seed, 4, &spec);
            let b = FleetFaultPlan::generate(seed, 4, &spec);
            assert_eq!(a, b, "seed {seed} must regenerate the same plan");
            assert_eq!(a.len(), 5);
            a.validate(4)
                .unwrap_or_else(|e| panic!("seed {seed} generated an invalid plan: {e}"));
            let sorted = a.faults().windows(2).all(|w| w[0].at <= w[1].at);
            assert!(sorted, "plans are sorted by ticket");
        }
        assert_ne!(
            FleetFaultPlan::generate(1, 4, &spec),
            FleetFaultPlan::generate(2, 4, &spec),
        );
        // A one-host fleet can only ever draw verify faults.
        let solo = FleetFaultPlan::generate(7, 1, &FleetFaultSpec::new(6, 10));
        assert!(solo
            .faults()
            .iter()
            .all(|f| matches!(f.fault, FleetFault::VerifyFault { host: 0 })));
        solo.validate(1).unwrap();
    }

    #[test]
    fn scenario_validation_rejects_bad_plans() {
        let out_of_range = FleetFaultPlan::new().inject(0, FleetFault::HostCrash { host: 5 });
        assert!(matches!(
            out_of_range.validate(2),
            Err(AllocError::FaultPlan { .. })
        ));
        let dead_target = FleetFaultPlan::new()
            .inject(0, FleetFault::HostCrash { host: 0 })
            .inject(1, FleetFault::VerifyFault { host: 0 });
        assert!(dead_target.validate(3).is_err());
        let no_survivor = FleetFaultPlan::new()
            .inject(0, FleetFault::HostCrash { host: 0 })
            .inject(1, FleetFault::HostDrain { host: 1 });
        assert!(no_survivor.validate(2).is_err());
        let unsorted_hi = FleetScenario::new(FleetFaultPlan::new(), vec![3, 1]);
        assert!(unsorted_hi.validate(2).is_err());
        FleetScenario::default().validate(1).unwrap();
    }

    #[test]
    fn arming_after_the_first_decision_is_rejected() {
        let mut f = fleet(2);
        f.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let err = f.arm(FleetScenario::default()).unwrap_err();
        assert!(matches!(err, AllocError::FaultPlan { .. }));
    }

    #[test]
    fn crash_evacuation_recharges_the_survivor_and_departure_uncharges_it() {
        let mut f = fleet(2);
        f.arm(FleetScenario::new(
            FleetFaultPlan::new().inject(2, FleetFault::HostCrash { host: 0 }),
            Vec::new(),
        ))
        .unwrap();
        // Both VMs (u=1.2 each) best-fit onto host 0; the crash before
        // item 2 evacuates them to host 1; the departures then must
        // uncharge host 1 — the *current* owner — not host 0.
        let items = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(2, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Departure(VmId(1))),
            FleetWorkItem::Single(AdmissionRequest::Departure(VmId(2))),
        ];
        f.replay(&items);
        let stats = f.router().stats();
        assert_eq!(stats.host_crashes, 1);
        assert_eq!(stats.evacuated_vms, 2);
        assert_eq!(stats.evac_placed, 2);
        assert_eq!(stats.evac_exhausted, 0);
        assert_eq!(f.router().alive(), &[false, true]);
        assert_eq!(
            f.router().loads()[0],
            0.0,
            "a dead host's bookkept load stays zero"
        );
        assert!(
            f.router().loads()[1].abs() < 1e-9,
            "survivor load must return to its pre-evacuation value, got {}",
            f.router().loads()[1]
        );
        assert!(f.engines()[0].working_set().is_empty(), "crash lost host 0");
        assert!(f.engines()[1].working_set().is_empty(), "both VMs departed");
        // The re-admissions are marked in the log; the departures they
        // enable route to the survivor.
        let text = f.log_text();
        assert!(text.contains(" evac"), "{text}");
        for d in f.decisions().iter().filter(|d| {
            matches!(d.decision.verdict, AdmissionVerdict::Departed)
        }) {
            assert_eq!(d.host, 1, "departures route to the current owner");
        }
    }

    #[test]
    fn drain_departs_evacuees_from_the_dying_host_then_replaces_them() {
        let mut f = fleet(2);
        f.arm(FleetScenario::new(
            FleetFaultPlan::new().inject(1, FleetFault::HostDrain { host: 0 }),
            Vec::new(),
        ))
        .unwrap();
        let items = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Departure(VmId(1))),
        ];
        f.replay(&items);
        let stats = f.router().stats();
        assert_eq!(stats.host_drains, 1);
        assert_eq!(stats.evacuated_vms, 1);
        assert_eq!(stats.evac_placed, 1);
        // Ticket order: arrival on host 0, evac departure off host 0,
        // evac re-admission on host 1, then the trace departure.
        let evac_lines: Vec<&FleetDecision> =
            f.decisions().iter().filter(|d| d.evac).collect();
        assert_eq!(evac_lines.len(), 2);
        assert_eq!(evac_lines[0].host, 0, "drain departs on the dying host");
        assert_eq!(evac_lines[0].decision.verdict, AdmissionVerdict::Departed);
        assert_eq!(evac_lines[1].host, 1, "re-admission lands on the survivor");
        assert!(
            f.engines()[0].working_set().is_empty(),
            "the drained engine saw every VM depart"
        );
        let last = f.decisions().last().unwrap();
        assert_eq!(last.host, 1, "the trace departure routes to the survivor");
        assert!(!last.evac);
    }

    #[test]
    fn verify_fault_downgrades_the_next_admission_to_a_repack() {
        let mut f = fleet(2);
        f.arm(FleetScenario::new(
            FleetFaultPlan::new().inject(1, FleetFault::VerifyFault { host: 0 }),
            Vec::new(),
        ))
        .unwrap();
        let items = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(2, 4.0, 3))),
        ];
        f.replay(&items);
        assert_eq!(f.router().stats().verify_faults, 1);
        assert_eq!(f.router().stats().faults_injected, 1);
        let lines: Vec<String> = f
            .decisions()
            .iter()
            .map(|d| d.log_line(2))
            .collect();
        assert!(lines[0].contains("admitted"), "{}", lines[0]);
        assert!(
            lines[1].contains("repack"),
            "the faulted verification must fall back to a repack: {}",
            lines[1]
        );
    }

    #[test]
    fn evacuation_gives_hi_vms_first_claim_on_survivor_headroom() {
        let mut f = fleet(2);
        f.arm(FleetScenario::new(
            FleetFaultPlan::new().inject(3, FleetFault::HostCrash { host: 0 }),
            vec![3],
        ))
        .unwrap();
        // Host 0 holds LO vm 1 (u=1.05) and HI vm 3 (u=1.0); host 1
        // holds u=2.9, leaving headroom for exactly one evacuee. A
        // utilization-major order would try (and place) the heavier LO
        // VM first; criticality-major places the HI VM and lets the LO
        // VM exhaust.
        let items = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 2.625, 4))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(3, 2.5, 4))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(4, 7.25, 4))),
        ];
        f.replay(&items);
        let stats = f.router().stats();
        assert_eq!(stats.evacuated_vms, 2);
        assert_eq!(stats.evac_hi, 1);
        assert_eq!(stats.evac_lo, 1);
        assert_eq!(stats.evac_placed, 1, "only the HI VM fits the survivor");
        assert_eq!(stats.evac_exhausted, 1);
        let failures = f.evacuation_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].vm, 1, "the LO VM is the one left behind");
        assert_eq!(failures[0].criticality, Criticality::Lo);
        assert_eq!(failures[0].attempts, 3);
        // The one evac re-admission is the HI VM, on the survivor.
        let placed: Vec<&FleetDecision> = f
            .decisions()
            .iter()
            .filter(|d| d.evac)
            .collect();
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].host, 1);
        assert!(
            placed[0].decision.log_line().contains("vm=3"),
            "{}",
            placed[0].decision.log_line()
        );
    }

    #[test]
    fn evacuation_exhaustion_is_reported_not_panicked() {
        let mut f = fleet(2);
        f.arm(FleetScenario::new(
            FleetFaultPlan::new().inject(2, FleetFault::HostCrash { host: 1 }),
            Vec::new(),
        ))
        .unwrap();
        // Two u=3.6 VMs: one per host. The crash strands the second
        // with no survivor headroom; it must exhaust as a typed
        // record, never a panic.
        let items = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 9.0, 4))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(2, 9.0, 4))),
        ];
        f.replay(&items);
        let stats = f.router().stats();
        assert_eq!(stats.evacuated_vms, 1);
        assert_eq!(stats.evac_placed, 0);
        assert_eq!(stats.evac_deferred, 3);
        assert_eq!(stats.evac_exhausted, 1);
        let failures = f.evacuation_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].vm, 2);
        assert_eq!(failures[0].attempts, 3);
    }

    #[test]
    fn armed_parallel_replay_matches_serial_at_every_thread_count() {
        let items: Vec<FleetWorkItem> = vec![
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(1, 4.0, 3))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(2, 4.0, 3))),
            FleetWorkItem::Batch(vec![
                AdmissionRequest::Arrival(vm(3, 2.0, 2)),
                AdmissionRequest::Arrival(vm(4, 5.0, 2)),
            ]),
            FleetWorkItem::Single(AdmissionRequest::Departure(VmId(2))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(5, 3.0, 2))),
            FleetWorkItem::Single(AdmissionRequest::ModeChange(vm(1, 2.0, 2))),
            FleetWorkItem::Single(AdmissionRequest::Arrival(vm(6, 2.0, 2))),
        ];
        let scenario = FleetScenario::new(
            FleetFaultPlan::new()
                .inject(2, FleetFault::VerifyFault { host: 0 })
                .inject(4, FleetFault::HostCrash { host: 1 })
                .inject(6, FleetFault::HostDrain { host: 2 }),
            vec![2, 5],
        );
        let platform = Platform::platform_a();
        let config = FleetConfig::new(3, 42);
        let mut serial = AdmissionFleet::new(platform, config);
        serial.arm(scenario.clone()).unwrap();
        serial.replay(&items);
        assert!(
            serial.router().stats().faults_injected == 3,
            "all three faults fire"
        );
        for threads in [1, 2, 8] {
            let parallel = AdmissionFleet::replay_parallel_armed(
                platform,
                config,
                scenario.clone(),
                &items,
                threads,
            )
            .unwrap();
            assert_eq!(parallel.log_text(), serial.log_text(), "threads={threads}");
            assert_eq!(parallel.aggregate_stats(), serial.aggregate_stats());
            assert_eq!(parallel.router().stats(), serial.router().stats());
            assert_eq!(parallel.router().loads(), serial.router().loads());
            assert_eq!(parallel.router().alive(), serial.router().alive());
            assert_eq!(parallel.evacuation_failures(), serial.evacuation_failures());
            for (a, b) in parallel.engines().iter().zip(serial.engines()) {
                assert_eq!(a.allocation(), b.allocation());
            }
        }
    }
}
