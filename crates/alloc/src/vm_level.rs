//! VM-level resource allocation: tasks → VCPUs (Section 4.2).
//!
//! Two packing disciplines are provided:
//!
//! * [`clustered`] — the vC²M heuristic: k-means over task slowdown
//!   vectors groups tasks with similar cache/bandwidth sensitivity, so
//!   tasks sharing a VCPU (and ultimately a core) make similar use of
//!   the resources given to that core. Each cluster receives a number
//!   of VCPUs proportional to its utilization mass, and tasks are
//!   packed worst-fit in decreasing reference utilization to balance
//!   VCPU loads.
//! * [`best_fit`] — the baseline discipline: best-fit decreasing bin
//!   packing by task utilization, capacity-1 bins, opening VCPUs as
//!   needed.
//!
//! VCPU parameters come from the selected [`VcpuSizing`] analysis.

use crate::kmeans::kmeans;
use crate::packing::{best_fit_open, sort_decreasing, Item};
use crate::AllocError;
use vc2m_analysis::{existing, regulated, AnalysisCache};
use vc2m_model::{Alloc, Surface, Task, TaskSet, VcpuId, VcpuSpec, VmSpec};
use vc2m_rng::Rng;

/// Which analysis computes a VCPU's `(Π, Θ(c,b))` from its tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcpuSizing {
    /// Theorem 2: well-regulated VCPU, zero abstraction overhead
    /// (requires harmonic tasksets).
    OverheadFree,
    /// The periodic resource model \[13\], allocation-aware.
    Existing,
    /// The periodic resource model with worst-case WCETs (no cache,
    /// worst-case bandwidth) — the Baseline solution's assumption.
    ExistingWorstCase,
}

/// Computes one VCPU's parameters for `taskset` under `sizing`.
///
/// The existing-CSA sizings route their minimal-budget computations
/// through `cache` (bit-identical results either way; pass
/// [`AnalysisCache::disabled`] to opt out). The overhead-free sizing
/// has no budget search to memoize.
///
/// # Errors
///
/// Propagates the underlying analysis error (empty taskset,
/// non-harmonic taskset for [`VcpuSizing::OverheadFree`]).
pub fn size_vcpu(
    sizing: VcpuSizing,
    id: VcpuId,
    vm: vc2m_model::VmId,
    taskset: &TaskSet,
    cache: &AnalysisCache,
) -> Result<VcpuSpec, AllocError> {
    let vcpu = match sizing {
        VcpuSizing::OverheadFree => regulated::regulated_vcpu(id, vm, taskset)?,
        VcpuSizing::Existing => existing::existing_vcpu_cached(id, vm, taskset, cache)?,
        VcpuSizing::ExistingWorstCase => {
            existing::existing_vcpu_worst_case_cached(id, vm, taskset, cache)?
        }
    };
    Ok(vcpu)
}

/// The vC²M VM-level heuristic: clusters the VM's tasks by slowdown
/// vector into (at most) `m` groups, distributes `m` VCPUs over the
/// clusters proportionally to their reference-utilization mass, packs
/// each cluster's tasks worst-fit in decreasing reference utilization,
/// and sizes each VCPU with `sizing`.
///
/// `m` is the paper's `min(#tasks, #cores)`; VCPU ids are assigned
/// consecutively from `first_id`.
///
/// # Errors
///
/// Propagates analysis errors; `m = 0` or an empty VM is a caller bug
/// and reported as [`AllocError::Analysis`] via the empty-taskset path.
pub fn clustered<R: Rng>(
    vm: &VmSpec,
    m: usize,
    sizing: VcpuSizing,
    first_id: usize,
    cache: &AnalysisCache,
    rng: &mut R,
) -> Result<Vec<VcpuSpec>, AllocError> {
    let tasks: Vec<&Task> = vm.tasks().iter().collect();
    let m = m.min(tasks.len()).max(1);

    // Cluster by slowdown vector (batch-evaluated over the taskset).
    let features: Vec<Vec<f64>> =
        Surface::batch_slowdown_rows(tasks.iter().map(|t| t.wcet_surface()));
    let feature_refs: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();
    let clustering = kmeans(&feature_refs, m, rng);
    let clusters = clustering.members();

    // VCPU quota per non-empty cluster: proportional to utilization
    // mass by D'Hondt apportionment (no minimum — a dominant cluster
    // must receive enough VCPUs to keep each VCPU's load below one;
    // starving it for the sake of tiny clusters would manufacture
    // infeasible VCPUs).
    let non_empty: Vec<&Vec<usize>> = clusters.iter().filter(|c| !c.is_empty()).collect();
    let masses: Vec<f64> = non_empty
        .iter()
        .map(|members| {
            members
                .iter()
                .map(|&i| tasks[i].reference_utilization())
                .sum()
        })
        .collect();
    let quotas = dhondt_quotas(&masses, m);

    // Pack each quota-holding cluster worst-fit decreasing into its
    // VCPU slots; quota-zero clusters' tasks spill into the globally
    // least-loaded slot, keeping all VCPU loads similar (the paper's
    // balancing objective).
    let mut bins: Vec<Vec<usize>> = Vec::new(); // task indices per VCPU slot
    let mut loads: Vec<f64> = Vec::new();
    let mut orphans: Vec<Item> = Vec::new();
    for (members, quota) in non_empty.iter().zip(&quotas) {
        let mut items: Vec<Item> = members
            .iter()
            .map(|&i| Item::new(i, tasks[i].reference_utilization()))
            .collect();
        sort_decreasing(&mut items);
        if *quota == 0 {
            orphans.extend(items);
            continue;
        }
        let base = bins.len();
        bins.extend(std::iter::repeat_with(Vec::new).take(*quota));
        loads.extend(std::iter::repeat_n(0.0, *quota));
        for item in items {
            let slot = (base..base + quota)
                .min_by(|&a, &b| {
                    loads[a]
                        .partial_cmp(&loads[b])
                        .expect("finite")
                        .then(a.cmp(&b))
                })
                .expect("quota >= 1");
            bins[slot].push(item.id);
            loads[slot] += item.size;
        }
    }
    sort_decreasing(&mut orphans);
    for item in orphans {
        let slot = (0..bins.len())
            .min_by(|&a, &b| {
                loads[a]
                    .partial_cmp(&loads[b])
                    .expect("finite")
                    .then(a.cmp(&b))
            })
            .expect("at least one cluster has quota >= 1");
        bins[slot].push(item.id);
        loads[slot] += item.size;
    }

    let mut vcpus = Vec::new();
    for (next_id, bin) in (first_id..).zip(bins.iter().filter(|b| !b.is_empty())) {
        let group: TaskSet = bin.iter().map(|&i| tasks[i].clone()).collect();
        vcpus.push(size_vcpu(sizing, VcpuId(next_id), vm.id(), &group, cache)?);
    }
    Ok(vcpus)
}

/// D'Hondt (highest averages) apportionment of `total` units over
/// `masses`: repeatedly award a unit to the entry maximizing
/// `mass / (quota + 1)`. Zero-mass entries receive nothing.
fn dhondt_quotas(masses: &[f64], total: usize) -> Vec<usize> {
    let mut quotas = vec![0usize; masses.len()];
    if masses.iter().all(|&m| m <= 0.0) {
        // Degenerate: give everything to the first entry (callers then
        // balance by count anyway).
        if let Some(q) = quotas.first_mut() {
            *q = total;
        }
        return quotas;
    }
    for _ in 0..total {
        let (winner, _) = masses
            .iter()
            .enumerate()
            .map(|(i, &m)| (i, m / (quotas[i] + 1) as f64))
            .max_by(|(i, a), (j, b)| a.partial_cmp(b).expect("finite").then(j.cmp(i)))
            .expect("masses is non-empty");
        quotas[winner] += 1;
    }
    quotas
}

/// The baseline VM-level discipline: best-fit decreasing bin packing
/// of tasks into capacity-1 VCPUs, measuring each task by its
/// utilization at `packing_alloc` (the Baseline uses the worst-case
/// corner; Evenly-partition uses the even per-core allocation). Each
/// resulting VCPU is sized with `sizing`.
///
/// # Errors
///
/// Propagates analysis errors from VCPU sizing.
pub fn best_fit(
    vm: &VmSpec,
    sizing: VcpuSizing,
    packing_alloc: Alloc,
    first_id: usize,
    cache: &AnalysisCache,
) -> Result<Vec<VcpuSpec>, AllocError> {
    let tasks: Vec<&Task> = vm.tasks().iter().collect();
    let mut items: Vec<Item> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| Item::new(i, t.utilization(packing_alloc)))
        .collect();
    sort_decreasing(&mut items);
    let bins = best_fit_open(&items);
    let mut vcpus = Vec::new();
    for (offset, bin) in bins.iter().filter(|b| !b.is_empty()).enumerate() {
        let group: TaskSet = bin.iter().map(|&i| tasks[i].clone()).collect();
        vcpus.push(size_vcpu(
            sizing,
            VcpuId(first_id + offset),
            vm.id(),
            &group,
            cache,
        )?);
    }
    Ok(vcpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_rng::DetRng;
    use vc2m_model::{Platform, ResourceSpace, TaskId, VmId, WcetSurface};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn flat_task(id: usize, period: f64, wcet: f64) -> Task {
        Task::new(
            TaskId(id),
            period,
            WcetSurface::flat(&space(), wcet).unwrap(),
        )
        .unwrap()
    }

    /// A task whose WCET scales with cache sensitivity `gain`.
    fn sensitive_task(id: usize, period: f64, wcet: f64, gain: f64) -> Task {
        let surface = WcetSurface::from_fn(&space(), |a| {
            wcet * (1.0 + gain * (20.0 - f64::from(a.cache)) / 18.0)
        })
        .unwrap();
        Task::new(TaskId(id), period, surface).unwrap()
    }

    fn vm(tasks: Vec<Task>) -> VmSpec {
        VmSpec::new(VmId(0), tasks.into_iter().collect()).unwrap()
    }

    #[test]
    fn dhondt_quotas_are_proportional_without_minimums() {
        assert_eq!(dhondt_quotas(&[1.0, 1.0], 4), vec![2, 2]);
        assert_eq!(dhondt_quotas(&[3.0, 1.0], 4), vec![3, 1]);
        // A dominant cluster takes nearly everything; tiny clusters can
        // end up with zero (their tasks spill into other VCPUs).
        let q = dhondt_quotas(&[1.05, 0.056, 0.082, 0.258], 4);
        assert_eq!(q.iter().sum::<usize>(), 4);
        assert!(q[0] >= 3, "dominant cluster was starved: {q:?}");
        let q = dhondt_quotas(&[0.0, 0.0], 5);
        assert_eq!(q.iter().sum::<usize>(), 5);
    }

    #[test]
    fn heavy_cluster_never_yields_an_infeasible_vcpu() {
        // 11 similar heavy tasks + 3 light oddballs, m = 4: the old
        // min-one-per-cluster policy gave the heavy cluster a single
        // VCPU with utilization > 1.
        let mut tasks: Vec<Task> = (0..11)
            .map(|i| sensitive_task(i, 100.0, 10.0, 2.0))
            .collect();
        tasks.extend((11..14).map(|i| sensitive_task(i, 200.0, 4.0, 0.05)));
        let vm = vm(tasks);
        let mut rng = DetRng::seed_from_u64(4);
        let vcpus = clustered(&vm, 4, VcpuSizing::OverheadFree, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        for v in &vcpus {
            assert!(
                v.reference_utilization() <= 1.0 + 1e-9,
                "vcpu with reference utilization {} is infeasible",
                v.reference_utilization()
            );
        }
    }

    #[test]
    fn clustered_covers_all_tasks_once() {
        let tasks: Vec<Task> = (0..8)
            .map(|i| sensitive_task(i, 100.0, 10.0, if i < 4 { 0.1 } else { 2.0 }))
            .collect();
        let vm = vm(tasks);
        let mut rng = DetRng::seed_from_u64(3);
        let vcpus = clustered(&vm, 4, VcpuSizing::OverheadFree, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        assert!(!vcpus.is_empty() && vcpus.len() <= 4);
        let mut covered: Vec<usize> = vcpus
            .iter()
            .flat_map(|v| v.tasks().iter().map(|t| t.index()))
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn clustered_separates_sensitivity_groups() {
        // 4 cache-insensitive + 4 strongly sensitive tasks, 2 VCPUs:
        // clustering should not mix the groups.
        let tasks: Vec<Task> = (0..8)
            .map(|i| sensitive_task(i, 100.0, 10.0, if i < 4 { 0.05 } else { 2.5 }))
            .collect();
        let vm = vm(tasks);
        let mut rng = DetRng::seed_from_u64(9);
        let vcpus = clustered(&vm, 2, VcpuSizing::OverheadFree, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        assert_eq!(vcpus.len(), 2);
        for v in &vcpus {
            let groups: std::collections::HashSet<bool> =
                v.tasks().iter().map(|t| t.index() < 4).collect();
            assert_eq!(groups.len(), 1, "vcpu mixes sensitivity groups");
        }
    }

    #[test]
    fn clustered_balances_loads() {
        // Homogeneous tasks: with m=2 the two VCPUs should carry equal
        // load.
        let tasks: Vec<Task> = (0..6).map(|i| flat_task(i, 100.0, 10.0)).collect();
        let vm = vm(tasks);
        let mut rng = DetRng::seed_from_u64(1);
        let vcpus = clustered(&vm, 2, VcpuSizing::OverheadFree, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        assert_eq!(vcpus.len(), 2);
        let u0 = vcpus[0].reference_utilization();
        let u1 = vcpus[1].reference_utilization();
        assert!((u0 - u1).abs() < 1e-9, "u0={u0}, u1={u1}");
    }

    #[test]
    fn clustered_m_capped_by_task_count() {
        let vm = vm(vec![flat_task(0, 100.0, 10.0)]);
        let mut rng = DetRng::seed_from_u64(1);
        let vcpus = clustered(&vm, 8, VcpuSizing::OverheadFree, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        assert_eq!(vcpus.len(), 1);
    }

    #[test]
    fn vcpu_ids_consecutive_from_first_id() {
        let tasks: Vec<Task> = (0..4).map(|i| flat_task(i, 100.0, 10.0)).collect();
        let vm = vm(tasks);
        let mut rng = DetRng::seed_from_u64(1);
        let vcpus = clustered(&vm, 4, VcpuSizing::OverheadFree, 10, &AnalysisCache::disabled(), &mut rng).unwrap();
        let mut ids: Vec<usize> = vcpus.iter().map(|v| v.id().index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (10..10 + vcpus.len()).collect::<Vec<_>>());
    }

    #[test]
    fn best_fit_packs_within_capacity() {
        // Utilization 0.4 each → best-fit pairs them two per VCPU.
        let tasks: Vec<Task> = (0..4).map(|i| flat_task(i, 100.0, 40.0)).collect();
        let vm = vm(tasks);
        let vcpus = best_fit(&vm, VcpuSizing::OverheadFree, space().reference(), 0, &AnalysisCache::disabled()).unwrap();
        assert_eq!(vcpus.len(), 2);
        for v in &vcpus {
            assert_eq!(v.tasks().len(), 2);
            assert!((v.reference_utilization() - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn best_fit_worst_case_sizing_is_flat() {
        let tasks: Vec<Task> = vec![sensitive_task(0, 100.0, 10.0, 1.0)];
        let vm = vm(tasks);
        let vcpus = best_fit(&vm, VcpuSizing::ExistingWorstCase, space().minimum(), 0, &AnalysisCache::disabled()).unwrap();
        assert_eq!(vcpus.len(), 1);
        let v = &vcpus[0];
        assert_eq!(v.budget(space().minimum()), v.budget(space().reference()));
    }

    #[test]
    fn existing_sizing_carries_overhead() {
        // Compare CPU-bandwidths (budgets are not comparable across
        // different server periods): the existing analysis always pays
        // some abstraction overhead even after its period search.
        let vm = vm(vec![flat_task(0, 10.0, 1.0)]);
        let mut rng = DetRng::seed_from_u64(1);
        let of = clustered(&vm, 1, VcpuSizing::OverheadFree, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        let ex = clustered(&vm, 1, VcpuSizing::Existing, 0, &AnalysisCache::disabled(), &mut rng).unwrap();
        assert!(
            ex[0].reference_utilization() > of[0].reference_utilization() + 0.005,
            "existing {} vs overhead-free {}",
            ex[0].reference_utilization(),
            of[0].reference_utilization()
        );
    }
}
