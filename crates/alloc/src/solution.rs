//! The five evaluated solutions (Section 5) as a single entry point.

use crate::hypervisor_level::{evenly_partitioned, heuristic, HeuristicConfig};
use crate::result::AllocationOutcome;
use crate::vm_level::{self, VcpuSizing};
use crate::AllocError;
use std::fmt;
use vc2m_analysis::{flattening, AnalysisCache};
use vc2m_model::{Alloc, Platform, VcpuSpec, VmSpec};
use vc2m_rng::DetRng;

/// One of the five solutions compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solution {
    /// *Heuristic (flattening)*: vC²M with one VCPU per task
    /// (Theorem 1) and the three-phase hypervisor heuristic.
    HeuristicFlattening,
    /// *Heuristic (overhead-free CSA)*: vC²M with well-regulated VCPUs
    /// (Theorem 2) and the three-phase hypervisor heuristic.
    HeuristicOverheadFree,
    /// *Heuristic (existing CSA)*: the heuristic allocation with VCPU
    /// parameters from the periodic resource model \[13\].
    HeuristicExisting,
    /// *Evenly-partition (overhead-free CSA)*: well-regulated VCPUs,
    /// but cache/BW split evenly and best-fit bin packing.
    EvenlyPartition,
    /// *Baseline (existing CSA)*: periodic resource model with
    /// worst-case WCETs (no cache, worst-case bandwidth) and best-fit
    /// bin packing.
    Baseline,
    /// The deployed vC²M behavior (Section 3.1): flattening for VMs
    /// whose VCPU cap admits one VCPU per task (most practical
    /// systems), the well-regulated analysis for the rest. Not part of
    /// the paper's five evaluated solutions ([`Solution::ALL`]).
    Auto,
}

impl Solution {
    /// All five solutions, in the paper's legend order.
    pub const ALL: [Solution; 5] = [
        Solution::Baseline,
        Solution::EvenlyPartition,
        Solution::HeuristicExisting,
        Solution::HeuristicOverheadFree,
        Solution::HeuristicFlattening,
    ];

    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Solution::HeuristicFlattening => "Heuristic (flattening)",
            Solution::HeuristicOverheadFree => "Heuristic (overhead-free CSA)",
            Solution::HeuristicExisting => "Heuristic (existing CSA)",
            Solution::EvenlyPartition => "Evenly-partition (overhead-free CSA)",
            Solution::Baseline => "Baseline (existing CSA)",
            Solution::Auto => "vC2M (auto)",
        }
    }

    /// Whether this solution uses the vC²M three-phase hypervisor
    /// heuristic (as opposed to best-fit with even resources).
    pub fn uses_heuristic_allocation(self) -> bool {
        matches!(
            self,
            Solution::HeuristicFlattening
                | Solution::HeuristicOverheadFree
                | Solution::HeuristicExisting
                | Solution::Auto
        )
    }

    /// Runs the full two-level allocation for `vms` on `platform`.
    ///
    /// Deterministic in `seed`. Workloads the solution's analysis
    /// cannot handle — a non-harmonic taskset under the overhead-free
    /// analysis, or a VM with more tasks than VCPUs under flattening —
    /// are reported as unschedulable, which matches how the paper's
    /// evaluation scores them.
    pub fn allocate(self, vms: &[VmSpec], platform: &Platform, seed: u64) -> AllocationOutcome {
        self.allocate_with_cache(vms, platform, seed, &AnalysisCache::disabled())
    }

    /// [`Solution::allocate`] with an [`AnalysisCache`] threaded
    /// through the analysis hot path.
    ///
    /// The cache memoizes the minimal-budget computations of the
    /// existing-CSA analyses; results are bit-identical to the uncached
    /// path (the sweep conformance suite pins this), and sharing one
    /// cache across the solutions analyzing the *same* taskset — as the
    /// paper's sweep methodology does — lets them reuse each other's
    /// work. The RNG stream is untouched: clustering and the hypervisor
    /// heuristic always run, only budget searches are memoized.
    pub fn allocate_with_cache(
        self,
        vms: &[VmSpec],
        platform: &Platform,
        seed: u64,
        cache: &AnalysisCache,
    ) -> AllocationOutcome {
        match self.try_allocate_with_cache(vms, platform, seed, cache) {
            Ok(outcome) => outcome,
            Err(AllocError::Analysis(_)) => AllocationOutcome::unschedulable(),
            Err(e) => panic!("allocation failed structurally: {e}"),
        }
    }

    /// Like [`Solution::allocate`], but surfaces analysis errors
    /// instead of scoring them unschedulable.
    ///
    /// # Errors
    ///
    /// * [`AllocError::NoVms`] if `vms` is empty.
    /// * [`AllocError::Analysis`] if a VM's workload violates the
    ///   solution's analysis premise.
    pub fn try_allocate(
        self,
        vms: &[VmSpec],
        platform: &Platform,
        seed: u64,
    ) -> Result<AllocationOutcome, AllocError> {
        self.try_allocate_with_cache(vms, platform, seed, &AnalysisCache::disabled())
    }

    /// [`Solution::try_allocate`] with an [`AnalysisCache`]; see
    /// [`Solution::allocate_with_cache`].
    ///
    /// # Errors
    ///
    /// * [`AllocError::NoVms`] if `vms` is empty.
    /// * [`AllocError::Analysis`] if a VM's workload violates the
    ///   solution's analysis premise.
    pub fn try_allocate_with_cache(
        self,
        vms: &[VmSpec],
        platform: &Platform,
        seed: u64,
        cache: &AnalysisCache,
    ) -> Result<AllocationOutcome, AllocError> {
        if vms.is_empty() {
            return Err(AllocError::NoVms);
        }
        let mut rng = DetRng::seed_from_u64(seed);
        let vcpus = self.vm_level_with_cache(vms, platform, cache, &mut rng)?;
        Ok(match self {
            Solution::HeuristicFlattening
            | Solution::HeuristicOverheadFree
            | Solution::HeuristicExisting
            | Solution::Auto => heuristic(vcpus, platform, HeuristicConfig::default(), &mut rng),
            Solution::EvenlyPartition | Solution::Baseline => evenly_partitioned(vcpus, platform),
        })
    }

    /// Runs only the VM level: tasks → VCPUs with computed parameters.
    ///
    /// # Errors
    ///
    /// Propagates VM-level analysis errors.
    pub fn vm_level(
        self,
        vms: &[VmSpec],
        platform: &Platform,
        rng: &mut DetRng,
    ) -> Result<Vec<VcpuSpec>, AllocError> {
        self.vm_level_with_cache(vms, platform, &AnalysisCache::disabled(), rng)
    }

    /// [`Solution::vm_level`] with an [`AnalysisCache`]; see
    /// [`Solution::allocate_with_cache`].
    ///
    /// # Errors
    ///
    /// Propagates VM-level analysis errors.
    pub fn vm_level_with_cache(
        self,
        vms: &[VmSpec],
        platform: &Platform,
        cache: &AnalysisCache,
        rng: &mut DetRng,
    ) -> Result<Vec<VcpuSpec>, AllocError> {
        let mut vcpus: Vec<VcpuSpec> = Vec::new();
        let even = even_alloc(platform);
        for vm in vms {
            let first_id = vcpus.len();
            let produced = match self {
                Solution::HeuristicFlattening => flattening::flatten_vm(vm, first_id)?,
                Solution::HeuristicOverheadFree => vm_level::clustered(
                    vm,
                    vm.tasks().len().min(platform.cores()),
                    VcpuSizing::OverheadFree,
                    first_id,
                    cache,
                    rng,
                )?,
                Solution::HeuristicExisting => vm_level::clustered(
                    vm,
                    vm.tasks().len().min(platform.cores()),
                    VcpuSizing::Existing,
                    first_id,
                    cache,
                    rng,
                )?,
                Solution::EvenlyPartition => {
                    vm_level::best_fit(vm, VcpuSizing::OverheadFree, even, first_id, cache)?
                }
                Solution::Baseline => vm_level::best_fit(
                    vm,
                    VcpuSizing::ExistingWorstCase,
                    platform.resources().minimum(),
                    first_id,
                    cache,
                )?,
                // Per-VM strategy choice: the direct mapping when the
                // VCPU cap allows it, the well-regulated fallback
                // otherwise (Section 3.1's two insights combined).
                Solution::Auto => {
                    if vm.supports_flattening() {
                        flattening::flatten_vm(vm, first_id)?
                    } else {
                        vm_level::clustered(
                            vm,
                            vm.max_vcpus().min(platform.cores()),
                            VcpuSizing::OverheadFree,
                            first_id,
                            cache,
                            rng,
                        )?
                    }
                }
            };
            vcpus.extend(produced);
        }
        Ok(vcpus)
    }
}

/// The even per-core allocation the Evenly-partition solution uses.
fn even_alloc(platform: &Platform) -> Alloc {
    let space = platform.resources();
    let m = platform.max_usable_cores().max(1) as u32;
    Alloc::new(
        (space.cache_max() / m).max(space.cache_min()),
        (space.bw_max() / m).max(space.bw_min()),
    )
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Task, TaskId, TaskSet, VmId, WcetSurface};

    fn flat_vm(n: usize, period: f64, wcet: f64) -> VmSpec {
        let space = Platform::platform_a().resources();
        let tasks: TaskSet = (0..n)
            .map(|i| {
                Task::new(TaskId(i), period, WcetSurface::flat(&space, wcet).unwrap()).unwrap()
            })
            .collect();
        VmSpec::new(VmId(0), tasks).unwrap()
    }

    #[test]
    fn all_solutions_handle_a_light_workload() {
        let platform = Platform::platform_a();
        let vms = vec![flat_vm(4, 100.0, 10.0)]; // total utilization 0.4
        for solution in Solution::ALL {
            let outcome = solution.allocate(&vms, &platform, 1);
            assert!(
                outcome.is_schedulable(),
                "{solution} failed a trivially light workload"
            );
            outcome.allocation().unwrap().verify(&platform).unwrap();
        }
    }

    #[test]
    fn no_solution_schedules_an_impossible_workload() {
        let platform = Platform::platform_a();
        // Reference utilization 5.0 > 4 cores.
        let vms = vec![flat_vm(10, 100.0, 50.0)];
        for solution in Solution::ALL {
            assert!(
                !solution.allocate(&vms, &platform, 1).is_schedulable(),
                "{solution} schedules > M utilization"
            );
        }
    }

    #[test]
    fn flattening_beats_baseline_on_cache_sensitive_tasks() {
        // 20 tasks of reference utilization 0.1 whose WCET is 2.33×
        // worse without cache. vC²M grants each core the 4 partitions
        // that restore the reference WCET and schedules all of them;
        // the baseline assumes no cache (utilization 0.233 per task →
        // total 4.67 > 4 cores) and gives up.
        let platform = Platform::platform_a();
        let space = platform.resources();
        let surface = WcetSurface::from_fn(&space, |a| {
            1.0 + 2.0 * ((4.0 - f64::from(a.cache)) / 3.0).max(0.0)
        })
        .unwrap();
        let tasks: TaskSet = (0..20)
            .map(|i| Task::new(TaskId(i), 10.0, surface.clone()).unwrap())
            .collect();
        let heavy = vec![VmSpec::new(VmId(0), tasks).unwrap()]; // reference utilization 2.0
        assert!(Solution::HeuristicFlattening
            .allocate(&heavy, &platform, 1)
            .is_schedulable());
        assert!(Solution::HeuristicOverheadFree
            .allocate(&heavy, &platform, 1)
            .is_schedulable());
        assert!(!Solution::Baseline
            .allocate(&heavy, &platform, 1)
            .is_schedulable());
    }

    #[test]
    fn flattening_falls_to_unschedulable_when_vcpu_cap_too_small() {
        let platform = Platform::platform_a();
        let space = platform.resources();
        let tasks: TaskSet = (0..4)
            .map(|i| Task::new(TaskId(i), 100.0, WcetSurface::flat(&space, 10.0).unwrap()).unwrap())
            .collect();
        let vm = VmSpec::with_max_vcpus(VmId(0), tasks, 2).unwrap();
        let outcome =
            Solution::HeuristicFlattening.allocate(std::slice::from_ref(&vm), &platform, 1);
        assert!(!outcome.is_schedulable());
        // try_allocate surfaces the reason.
        assert!(matches!(
            Solution::HeuristicFlattening.try_allocate(&[vm], &platform, 1),
            Err(AllocError::Analysis(_))
        ));
        // The overhead-free analysis handles the same VM fine.
    }

    #[test]
    fn overhead_free_handles_capped_vms() {
        let platform = Platform::platform_a();
        let space = platform.resources();
        let tasks: TaskSet = (0..4)
            .map(|i| Task::new(TaskId(i), 100.0, WcetSurface::flat(&space, 10.0).unwrap()).unwrap())
            .collect();
        let vm = VmSpec::with_max_vcpus(VmId(0), tasks, 2).unwrap();
        // Note: the clustered VM level produces min(tasks, cores) VCPUs,
        // which may exceed the cap; Theorem 2 exists precisely for this
        // case, packing all tasks onto fewer VCPUs. Here 4 tasks → up
        // to 4 VCPUs but the analysis succeeds regardless of cap since
        // clustering can fold tasks together.
        let outcome = Solution::HeuristicOverheadFree.allocate(&[vm], &platform, 1);
        assert!(outcome.is_schedulable());
    }

    #[test]
    fn empty_vm_list_is_an_error() {
        assert!(matches!(
            Solution::Baseline.try_allocate(&[], &Platform::platform_a(), 1),
            Err(AllocError::NoVms)
        ));
    }

    #[test]
    fn names_match_paper_legend() {
        assert_eq!(Solution::Baseline.name(), "Baseline (existing CSA)");
        assert_eq!(
            Solution::HeuristicOverheadFree.to_string(),
            "Heuristic (overhead-free CSA)"
        );
        assert_eq!(Solution::ALL.len(), 5);
    }

    #[test]
    fn auto_flattens_when_possible_and_falls_back_when_capped() {
        let platform = Platform::platform_a();
        let space = platform.resources();
        let tasks: TaskSet = (0..6)
            .map(|i| Task::new(TaskId(i), 100.0, WcetSurface::flat(&space, 10.0).unwrap()).unwrap())
            .collect();
        // Uncapped VM: one VCPU per task.
        let open = VmSpec::new(VmId(0), tasks.clone()).unwrap();
        let mut rng = DetRng::seed_from_u64(1);
        let vcpus = Solution::Auto
            .vm_level(std::slice::from_ref(&open), &platform, &mut rng)
            .unwrap();
        assert_eq!(vcpus.len(), 6, "flattening path: one VCPU per task");
        // Capped VM (2 VCPUs for 6 tasks): the well-regulated fallback.
        let capped = VmSpec::with_max_vcpus(VmId(0), tasks, 2).unwrap();
        let mut rng = DetRng::seed_from_u64(1);
        let vcpus = Solution::Auto
            .vm_level(std::slice::from_ref(&capped), &platform, &mut rng)
            .unwrap();
        assert!(
            vcpus.len() <= 2,
            "must respect the cap, got {}",
            vcpus.len()
        );
        // And the whole pipeline still schedules it.
        assert!(Solution::Auto
            .allocate(std::slice::from_ref(&capped), &platform, 1)
            .is_schedulable());
    }

    #[test]
    fn auto_matches_flattening_on_uncapped_workloads() {
        let platform = Platform::platform_a();
        let vms = vec![flat_vm(5, 100.0, 15.0)];
        let auto = Solution::Auto.allocate(&vms, &platform, 3);
        let flat = Solution::HeuristicFlattening.allocate(&vms, &platform, 3);
        assert_eq!(
            auto, flat,
            "uncapped VMs take the identical flattening path"
        );
    }

    #[test]
    fn determinism() {
        let platform = Platform::platform_a();
        let vms = vec![flat_vm(6, 100.0, 20.0)];
        for solution in Solution::ALL {
            let a = solution.allocate(&vms, &platform, 99);
            let b = solution.allocate(&vms, &platform, 99);
            assert_eq!(a, b, "{solution} is not deterministic");
        }
    }

    #[test]
    fn cached_allocation_matches_uncached() {
        // A cache-sensitive workload so the existing-CSA analyses do
        // real budget searches; one shared cache across all solutions,
        // as the sweep engine uses it.
        let platform = Platform::platform_a();
        let space = platform.resources();
        let surface = WcetSurface::from_fn(&space, |a| {
            10.0 * (1.0 + 1.5 * ((8.0 - f64::from(a.cache)) / 8.0).max(0.0))
        })
        .unwrap();
        let tasks: TaskSet = (0..8)
            .map(|i| Task::new(TaskId(i), 100.0 * (1 << (i % 3)) as f64, surface.clone()).unwrap())
            .collect();
        let vms = vec![VmSpec::new(VmId(0), tasks).unwrap()];
        let cache = AnalysisCache::enabled();
        for solution in Solution::ALL {
            let plain = solution.allocate(&vms, &platform, 7);
            let cached = solution.allocate_with_cache(&vms, &platform, 7, &cache);
            assert_eq!(plain, cached, "{solution} diverges under the cache");
        }
        assert!(
            cache.stats().hits > 0,
            "shared cache never hit: {:?}",
            cache.stats()
        );
    }
}
