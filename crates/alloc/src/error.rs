//! Error type for the allocation crate.

use std::error::Error;
use std::fmt;
use vc2m_analysis::AnalysisError;
use vc2m_model::ModelError;

/// Error returned by allocation algorithms and allocation-result
/// validation.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// The VM set was empty.
    NoVms,
    /// An underlying analysis failed.
    Analysis(AnalysisError),
    /// An underlying model constructor failed.
    Model(ModelError),
    /// A produced allocation violates an invariant (used by
    /// [`SystemAllocation::verify`](crate::SystemAllocation::verify)).
    InvalidAllocation {
        /// Description of the violated invariant.
        detail: String,
    },
    /// A fleet fault scenario failed validation when it was armed
    /// (out-of-range host, fault targeting an already-dead host, a
    /// plan that would leave no survivor, or a malformed HI-VM set) —
    /// mirroring the hypervisor fault plan's validated-at-attach rule.
    FaultPlan {
        /// What was wrong with the scenario.
        detail: String,
    },
    /// The per-core partition grants sum past the platform totals —
    /// an admission-state invariant breach surfaced by
    /// [`AdmissionEngine`](crate::AdmissionEngine)'s spare-pool
    /// accounting instead of being masked as "zero spare".
    CoreOversubscription {
        /// Cache partitions granted across all cores.
        cache_allocated: u32,
        /// Cache partitions the platform has.
        cache_total: u32,
        /// Bandwidth partitions granted across all cores.
        bw_allocated: u32,
        /// Bandwidth partitions the platform has.
        bw_total: u32,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoVms => write!(f, "at least one VM is required"),
            AllocError::Analysis(e) => write!(f, "analysis error: {e}"),
            AllocError::Model(e) => write!(f, "model error: {e}"),
            AllocError::InvalidAllocation { detail } => {
                write!(f, "invalid allocation: {detail}")
            }
            AllocError::FaultPlan { detail } => {
                write!(f, "invalid fleet fault scenario: {detail}")
            }
            AllocError::CoreOversubscription {
                cache_allocated,
                cache_total,
                bw_allocated,
                bw_total,
            } => write!(
                f,
                "core allocation oversubscribed: cache {cache_allocated}/{cache_total}, \
                 bandwidth {bw_allocated}/{bw_total}"
            ),
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Analysis(e) => Some(e),
            AllocError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for AllocError {
    fn from(e: AnalysisError) -> Self {
        AllocError::Analysis(e)
    }
}

impl From<ModelError> for AllocError {
    fn from(e: ModelError) -> Self {
        AllocError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(AllocError::NoVms.to_string().contains("VM"));
        let e = AllocError::Analysis(AnalysisError::NotHarmonic);
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&AllocError::NoVms).is_none());
    }
}
