//! Error type for the allocation crate.

use std::error::Error;
use std::fmt;
use vc2m_analysis::AnalysisError;
use vc2m_model::ModelError;

/// Error returned by allocation algorithms and allocation-result
/// validation.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// The VM set was empty.
    NoVms,
    /// An underlying analysis failed.
    Analysis(AnalysisError),
    /// An underlying model constructor failed.
    Model(ModelError),
    /// A produced allocation violates an invariant (used by
    /// [`SystemAllocation::verify`](crate::SystemAllocation::verify)).
    InvalidAllocation {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoVms => write!(f, "at least one VM is required"),
            AllocError::Analysis(e) => write!(f, "analysis error: {e}"),
            AllocError::Model(e) => write!(f, "model error: {e}"),
            AllocError::InvalidAllocation { detail } => {
                write!(f, "invalid allocation: {detail}")
            }
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Analysis(e) => Some(e),
            AllocError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for AllocError {
    fn from(e: AnalysisError) -> Self {
        AllocError::Analysis(e)
    }
}

impl From<ModelError> for AllocError {
    fn from(e: ModelError) -> Self {
        AllocError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(AllocError::NoVms.to_string().contains("VM"));
        let e = AllocError::Analysis(AnalysisError::NotHarmonic);
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&AllocError::NoVms).is_none());
    }
}
