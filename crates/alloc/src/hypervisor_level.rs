//! Hypervisor-level resource allocation: VCPUs → cores, and cache/BW
//! partitions → cores (Section 4.3).
//!
//! The vC²M heuristic ([`heuristic`]) tries increasing core counts
//! `m = 1..M`. For each `m` it clusters VCPUs by slowdown vector and
//! repeats three phases until the system is schedulable or an
//! iteration cap is hit:
//!
//! * **Phase 1 (packing)** — a random permutation of the clusters is
//!   packed, cluster by cluster, worst-fit in decreasing reference
//!   utilization, keeping core loads balanced;
//! * **Phase 2 (resource allocation)** — every core starts at
//!   `(Cmin, Bmin)`; while some core fails the schedulability test,
//!   the spare partition (cache or bandwidth) giving the largest
//!   utilization reduction on an unschedulable core is assigned; the
//!   phase fails when no partition helps ("no impact on utilization")
//!   or the pools run dry;
//! * **Phase 3 (load balancing)** — VCPUs migrate from unschedulable
//!   cores to the schedulable core that will have the smallest
//!   utilization after the migration; then Phase 2 re-runs.
//!
//! The baseline discipline ([`evenly_partitioned`]) splits cache and
//! bandwidth evenly over all cores and packs VCPUs best-fit decreasing.

use crate::kmeans::kmeans;
use crate::packing::{best_fit_open, sort_decreasing, Item};
use crate::result::{AllocationOutcome, CoreAssignment, SystemAllocation};
use vc2m_rng::Rng;
use vc2m_analysis::core_check::{core_schedulable, core_utilization, UTILIZATION_EPS};
use vc2m_model::{Alloc, Platform, VcpuSpec};

/// Tuning knobs of the three-phase heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicConfig {
    /// Phase-1 restarts per core count (random cluster permutations).
    pub max_permutations: usize,
    /// Phase-3 ↔ Phase-2 rounds per packing.
    pub max_balance_rounds: usize,
}

impl Default for HeuristicConfig {
    /// 10 permutations × 4 balance rounds, a good cost/quality
    /// trade-off in our experiments.
    fn default() -> Self {
        HeuristicConfig {
            max_permutations: 10,
            max_balance_rounds: 4,
        }
    }
}

/// The vC²M hypervisor-level heuristic.
///
/// Returns a schedulable [`SystemAllocation`] (using the fewest cores
/// the heuristic could make work) or an unschedulable outcome.
pub fn heuristic<R: Rng>(
    vcpus: Vec<VcpuSpec>,
    platform: &Platform,
    config: HeuristicConfig,
    rng: &mut R,
) -> AllocationOutcome {
    if vcpus.is_empty() {
        return AllocationOutcome::schedulable(SystemAllocation::new(vcpus, Vec::new()));
    }
    let space = platform.resources();
    let reference_total: f64 = vcpus.iter().map(|v| v.utilization(space.reference())).sum();

    // Cluster VCPUs once; cluster geometry does not depend on m.
    let features: Vec<Vec<f64>> =
        vc2m_model::Surface::batch_slowdown_rows(vcpus.iter().map(|v| v.budget_surface()));
    let feature_refs: Vec<&[f64]> = features.iter().map(|f| f.as_slice()).collect();

    for m in 1..=platform.max_usable_cores() {
        // Necessary condition: even with all resources, total
        // utilization cannot exceed m.
        if reference_total > m as f64 + UTILIZATION_EPS {
            continue;
        }
        let k = m.min(vcpus.len());
        let clusters = kmeans(&feature_refs, k, rng).members();

        for _ in 0..config.max_permutations {
            let mut order: Vec<usize> = (0..clusters.len()).collect();
            rng.shuffle(&mut order);
            let mut assignment = pack_by_clusters(&vcpus, &clusters, &order, m);

            for _ in 0..config.max_balance_rounds {
                let (allocs, schedulable) = allocate_resources(&vcpus, &assignment, platform, m);
                if schedulable {
                    let allocation = build(&vcpus, assignment, allocs);
                    debug_assert!(allocation.verify(platform).is_ok());
                    return AllocationOutcome::schedulable(allocation);
                }
                if !balance_load(&vcpus, &mut assignment, &allocs) {
                    break; // no benefit in balancing: new permutation
                }
            }
        }
    }
    AllocationOutcome::unschedulable()
}

/// Phase 1: packs clusters (in `order`) onto `m` cores, worst-fit in
/// decreasing reference utilization, with core loads carried across
/// clusters.
fn pack_by_clusters(
    vcpus: &[VcpuSpec],
    clusters: &[Vec<usize>],
    order: &[usize],
    m: usize,
) -> Vec<Vec<usize>> {
    let mut cores: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut loads = vec![0.0f64; m];
    for &cluster in order {
        let mut items: Vec<Item> = clusters[cluster]
            .iter()
            .map(|&i| Item::new(i, vcpus[i].reference_utilization()))
            .collect();
        sort_decreasing(&mut items);
        for item in items {
            let (best, _) = loads
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| a.partial_cmp(b).expect("loads are finite").then(i.cmp(j)))
                .expect("m >= 1");
            cores[best].push(item.id);
            loads[best] += item.size;
        }
    }
    cores
}

/// Phase 2: greedy marginal-utility resource allocation. Every core
/// starts at `(Cmin, Bmin)`; spare partitions go one at a time to the
/// unschedulable core with the highest utilization reduction.
///
/// Returns the per-core allocations and whether every core ended up
/// schedulable.
fn allocate_resources(
    vcpus: &[VcpuSpec],
    assignment: &[Vec<usize>],
    platform: &Platform,
    m: usize,
) -> (Vec<Alloc>, bool) {
    let space = platform.resources();
    let mut allocs = vec![space.minimum(); m];
    let mut cache_left = space.cache_max() - space.cache_min() * m as u32;
    let mut bw_left = space.bw_max() - space.bw_min() * m as u32;

    let util = |k: usize, a: Alloc| core_utilization(assignment[k].iter().map(|&i| &vcpus[i]), a);
    let sched = |k: usize, a: Alloc| {
        core_schedulable(
            assignment[k]
                .iter()
                .map(|&i| &vcpus[i])
                .collect::<Vec<_>>()
                .iter()
                .copied(),
            a,
        )
    };

    loop {
        let unschedulable: Vec<usize> = (0..m).filter(|&k| !sched(k, allocs[k])).collect();
        if unschedulable.is_empty() {
            return (allocs, true);
        }
        // Best single-partition upgrade across unschedulable cores.
        let mut best: Option<(usize, bool, f64)> = None; // (core, is_cache, gain)
        for &k in &unschedulable {
            let now = util(k, allocs[k]);
            if cache_left > 0 && allocs[k].cache < space.cache_max() {
                let upgraded = Alloc::new(allocs[k].cache + 1, allocs[k].bandwidth);
                let gain = now - util(k, upgraded);
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((k, true, gain));
                }
            }
            if bw_left > 0 && allocs[k].bandwidth < space.bw_max() {
                let upgraded = Alloc::new(allocs[k].cache, allocs[k].bandwidth + 1);
                let gain = now - util(k, upgraded);
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((k, false, gain));
                }
            }
        }
        match best {
            Some((k, true, gain)) if gain > UTILIZATION_EPS => {
                allocs[k] = Alloc::new(allocs[k].cache + 1, allocs[k].bandwidth);
                cache_left -= 1;
            }
            Some((k, false, gain)) if gain > UTILIZATION_EPS => {
                allocs[k] = Alloc::new(allocs[k].cache, allocs[k].bandwidth + 1);
                bw_left -= 1;
            }
            // No spare partition has any impact on utilization.
            _ => return (allocs, false),
        }
    }
}

/// Phase 3: migrates VCPUs off unschedulable cores. For each
/// unschedulable core (largest-utilization VCPU first), the VCPU moves
/// to the schedulable core that will have the smallest utilization
/// after the migration. Returns whether anything moved.
fn balance_load(vcpus: &[VcpuSpec], assignment: &mut [Vec<usize>], allocs: &[Alloc]) -> bool {
    let m = assignment.len();
    let mut moved_any = false;
    let mut moves_left = vcpus.len(); // global guard against cycles

    for k in 0..m {
        loop {
            let source_vcpus: Vec<&VcpuSpec> = assignment[k].iter().map(|&i| &vcpus[i]).collect();
            if moves_left == 0
                || core_schedulable(source_vcpus.iter().copied(), allocs[k])
                || assignment[k].is_empty()
            {
                break;
            }
            // Largest-utilization VCPU on the source core.
            let (pos, &vcpu_idx) = assignment[k]
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    vcpus[a]
                        .utilization(allocs[k])
                        .partial_cmp(&vcpus[b].utilization(allocs[k]))
                        .expect("utilizations are finite")
                })
                .expect("core is non-empty");
            // Destination: schedulable core with smallest post-move
            // utilization.
            let dest = (0..m)
                .filter(|&j| j != k)
                .filter(|&j| {
                    core_schedulable(
                        assignment[j]
                            .iter()
                            .map(|&i| &vcpus[i])
                            .collect::<Vec<_>>()
                            .iter()
                            .copied(),
                        allocs[j],
                    )
                })
                .map(|j| {
                    let after =
                        core_utilization(assignment[j].iter().map(|&i| &vcpus[i]), allocs[j])
                            + vcpus[vcpu_idx].utilization(allocs[j]);
                    (j, after)
                })
                .min_by(|(i, a), (j, b)| {
                    a.partial_cmp(b)
                        .expect("utilizations are finite")
                        .then(i.cmp(j))
                });
            match dest {
                Some((j, after)) if after <= 1.0 + UTILIZATION_EPS => {
                    assignment[k].remove(pos);
                    assignment[j].push(vcpu_idx);
                    moved_any = true;
                    moves_left -= 1;
                }
                _ => break, // no destination can absorb anything useful
            }
        }
    }
    moved_any
}

fn build(vcpus: &[VcpuSpec], assignment: Vec<Vec<usize>>, allocs: Vec<Alloc>) -> SystemAllocation {
    let cores = assignment
        .into_iter()
        .zip(allocs)
        .map(|(vcpu_indices, alloc)| CoreAssignment {
            vcpus: vcpu_indices,
            alloc,
        })
        .collect();
    SystemAllocation::new(vcpus.to_vec(), cores)
}

/// The baseline hypervisor-level discipline: cache and bandwidth are
/// split evenly over all (usable) cores, and VCPUs are packed best-fit
/// in decreasing utilization at the even allocation.
pub fn evenly_partitioned(vcpus: Vec<VcpuSpec>, platform: &Platform) -> AllocationOutcome {
    if vcpus.is_empty() {
        return AllocationOutcome::schedulable(SystemAllocation::new(vcpus, Vec::new()));
    }
    let space = platform.resources();
    let m = platform.max_usable_cores();
    if m == 0 {
        return AllocationOutcome::unschedulable();
    }
    let even = Alloc::new(
        (space.cache_max() / m as u32).max(space.cache_min()),
        (space.bw_max() / m as u32).max(space.bw_min()),
    );
    // The max() above can only fire when the floor is below the
    // minimum, which max_usable_cores() excludes; assert the invariant.
    debug_assert!(space.contains(even));
    debug_assert!(even.cache * m as u32 <= space.cache_max());
    debug_assert!(even.bandwidth * m as u32 <= space.bw_max());

    let mut items: Vec<Item> = vcpus
        .iter()
        .enumerate()
        .map(|(i, v)| Item::new(i, v.utilization(even)))
        .collect();
    sort_decreasing(&mut items);
    let bins = best_fit_open(&items);
    if bins.len() > m {
        return AllocationOutcome::unschedulable();
    }
    let assignment: Vec<Vec<usize>> = bins;
    let allocs = vec![even; assignment.len()];
    let allocation = build(&vcpus, assignment, allocs);
    if allocation.is_schedulable() && allocation.verify(platform).is_ok() {
        AllocationOutcome::schedulable(allocation)
    } else {
        AllocationOutcome::unschedulable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_rng::DetRng;
    use vc2m_model::{BudgetSurface, ResourceSpace, TaskId, VcpuId, VmId};

    fn space() -> ResourceSpace {
        Platform::platform_a().resources()
    }

    fn flat_vcpu(id: usize, period: f64, budget: f64) -> VcpuSpec {
        VcpuSpec::new(
            VcpuId(id),
            VmId(0),
            period,
            BudgetSurface::flat(&space(), budget).unwrap(),
            vec![TaskId(id)],
        )
        .unwrap()
    }

    /// A VCPU whose budget shrinks as its core gets more cache.
    fn cache_hungry_vcpu(id: usize, period: f64, base: f64, gain: f64) -> VcpuSpec {
        let surface = BudgetSurface::from_fn(&space(), |a| {
            base * (1.0 + gain * (20.0 - f64::from(a.cache)) / 18.0)
        })
        .unwrap();
        VcpuSpec::new(VcpuId(id), VmId(0), period, surface, vec![TaskId(id)]).unwrap()
    }

    fn rng() -> DetRng {
        DetRng::seed_from_u64(2024)
    }

    #[test]
    fn empty_vcpu_set_is_trivially_schedulable() {
        let outcome = heuristic(
            Vec::new(),
            &Platform::platform_a(),
            HeuristicConfig::default(),
            &mut rng(),
        );
        assert!(outcome.is_schedulable());
        assert_eq!(outcome.allocation().unwrap().cores_used(), 0);
    }

    #[test]
    fn single_light_vcpu_fits_one_core() {
        let outcome = heuristic(
            vec![flat_vcpu(0, 10.0, 3.0)],
            &Platform::platform_a(),
            HeuristicConfig::default(),
            &mut rng(),
        );
        let a = outcome.allocation().expect("schedulable");
        assert_eq!(a.cores_used(), 1);
        a.verify(&Platform::platform_a()).unwrap();
    }

    #[test]
    fn load_spreads_over_cores() {
        // Four VCPUs of utilization 0.8 need all four cores.
        let vcpus: Vec<VcpuSpec> = (0..4).map(|i| flat_vcpu(i, 10.0, 8.0)).collect();
        let outcome = heuristic(
            vcpus,
            &Platform::platform_a(),
            HeuristicConfig::default(),
            &mut rng(),
        );
        let a = outcome.allocation().expect("schedulable");
        assert_eq!(a.cores_used(), 4);
        for k in 0..4 {
            assert!((a.core_utilization(k) - 0.8).abs() < 1e-9);
        }
        a.verify(&Platform::platform_a()).unwrap();
    }

    #[test]
    fn overload_is_unschedulable() {
        // Total utilization 4.5 on a 4-core platform.
        let vcpus: Vec<VcpuSpec> = (0..5).map(|i| flat_vcpu(i, 10.0, 9.0)).collect();
        let outcome = heuristic(
            vcpus,
            &Platform::platform_a(),
            HeuristicConfig::default(),
            &mut rng(),
        );
        assert!(!outcome.is_schedulable());
    }

    #[test]
    fn resources_rescue_cache_hungry_vcpus() {
        // Utilization 1.25 per core at (Cmin, Bmin), 0.625 at full cache:
        // schedulable only if Phase 2 grants cache partitions.
        let vcpus: Vec<VcpuSpec> = (0..2)
            .map(|i| cache_hungry_vcpu(i, 10.0, 6.25, 1.0))
            .collect();
        let platform = Platform::platform_a();
        let outcome = heuristic(vcpus, &platform, HeuristicConfig::default(), &mut rng());
        let a = outcome.allocation().expect("schedulable with enough cache");
        a.verify(&platform).unwrap();
        // The cores that got VCPUs must hold more than the minimum cache.
        let total_cache: u32 = a.cores().iter().map(|c| c.alloc.cache).sum();
        assert!(total_cache > 2 * 2, "phase 2 never granted cache");
    }

    #[test]
    fn heuristic_uses_fewest_possible_cores() {
        // Two 0.4 VCPUs fit one core; m-loop must stop at 1.
        let vcpus: Vec<VcpuSpec> = (0..2).map(|i| flat_vcpu(i, 10.0, 4.0)).collect();
        let outcome = heuristic(
            vcpus,
            &Platform::platform_a(),
            HeuristicConfig::default(),
            &mut rng(),
        );
        assert_eq!(outcome.allocation().unwrap().cores_used(), 1);
    }

    #[test]
    fn evenly_partitioned_balanced_load() {
        let vcpus: Vec<VcpuSpec> = (0..4).map(|i| flat_vcpu(i, 10.0, 5.0)).collect();
        let platform = Platform::platform_a();
        let outcome = evenly_partitioned(vcpus, &platform);
        let a = outcome.allocation().expect("schedulable");
        a.verify(&platform).unwrap();
        // Even allocation: every used core has C/M = 5 cache partitions.
        for core in a.cores() {
            assert_eq!(core.alloc, Alloc::new(5, 5));
        }
    }

    #[test]
    fn evenly_partitioned_fails_when_bins_exceed_cores() {
        let vcpus: Vec<VcpuSpec> = (0..5).map(|i| flat_vcpu(i, 10.0, 9.0)).collect();
        assert!(!evenly_partitioned(vcpus, &Platform::platform_a()).is_schedulable());
    }

    #[test]
    fn evenly_partitioned_wastes_resources_heuristic_recovers() {
        // A smoothly cache-hungry VCPU that fits only with a *skewed*
        // cache split (it needs ≥ 17 partitions; the modest peer needs
        // 2). The even split (5 each on platform A) is not enough for
        // the hungry one; the heuristic's marginal-utility phase walks
        // up the smooth slope and finds the skew.
        let hungry = {
            let surface = BudgetSurface::from_fn(&space(), |a| {
                9.0 + 6.0 * (20.0 - f64::from(a.cache)) / 18.0
            })
            .unwrap();
            VcpuSpec::new(VcpuId(0), VmId(0), 10.0, surface, vec![TaskId(0)]).unwrap()
        };
        let modest = flat_vcpu(1, 10.0, 5.0);
        let platform = Platform::platform_a();
        let even = evenly_partitioned(vec![hungry.clone(), modest.clone()], &platform);
        assert!(!even.is_schedulable(), "even split should fail");
        let heur = heuristic(
            vec![hungry, modest],
            &platform,
            HeuristicConfig::default(),
            &mut rng(),
        );
        assert!(
            heur.is_schedulable(),
            "heuristic should find the skewed split"
        );
    }

    #[test]
    fn determinism_for_seed() {
        let vcpus: Vec<VcpuSpec> = (0..6)
            .map(|i| cache_hungry_vcpu(i, 10.0, 2.0, 0.8))
            .collect();
        let platform = Platform::platform_a();
        let a = heuristic(
            vcpus.clone(),
            &platform,
            HeuristicConfig::default(),
            &mut DetRng::seed_from_u64(7),
        );
        let b = heuristic(
            vcpus,
            &platform,
            HeuristicConfig::default(),
            &mut DetRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }
}
