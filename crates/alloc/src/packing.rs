//! Bin-packing primitives shared by the allocation algorithms.
//!
//! Two disciplines appear in the paper's evaluation:
//!
//! * **worst-fit decreasing** — used by the heuristic phases to
//!   *balance* load ("such that all cores have similar total reference
//!   utilizations"): each item goes to the least-loaded bin;
//! * **best-fit decreasing** — used by the baseline solutions: each
//!   item goes to the fullest bin it still fits in, opening a new bin
//!   otherwise.

/// An item to pack: an opaque id plus its size (utilization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Caller-side identifier (e.g. an index into a VCPU list).
    pub id: usize,
    /// The item's size, e.g. its reference utilization.
    pub size: f64,
}

impl Item {
    /// Creates an item.
    ///
    /// # Panics
    ///
    /// Panics if `size` is negative or non-finite.
    pub fn new(id: usize, size: f64) -> Self {
        assert!(
            size.is_finite() && size >= 0.0,
            "item size must be non-negative and finite, got {size}"
        );
        Item { id, size }
    }
}

/// Sorts items by decreasing size (ties broken by id for determinism).
pub fn sort_decreasing(items: &mut [Item]) {
    items.sort_by(|a, b| {
        b.size
            .partial_cmp(&a.size)
            .expect("sizes are finite")
            .then(a.id.cmp(&b.id))
    });
}

/// Worst-fit packing into a **fixed** number of bins: each item (taken
/// in the given order) goes to the currently least-loaded bin. Returns
/// the item ids per bin. Never fails — worst-fit into fixed bins is a
/// balancing discipline, not a feasibility test.
///
/// # Panics
///
/// Panics if `bins` is zero while items are non-empty.
pub fn worst_fit_fixed(items: &[Item], bins: usize) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new(); bins];
    }
    assert!(bins > 0, "need at least one bin");
    let mut contents: Vec<Vec<usize>> = vec![Vec::new(); bins];
    let mut loads = vec![0.0f64; bins];
    for item in items {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| a.partial_cmp(b).expect("loads are finite").then(i.cmp(j)))
            .expect("bins is non-zero");
        contents[best].push(item.id);
        loads[best] += item.size;
    }
    contents
}

/// Best-fit packing with capacity-1 bins, opening new bins as needed:
/// each item (in the given order) goes to the *fullest* bin whose load
/// plus the item stays ≤ 1; a new bin opens if none fits. Items larger
/// than 1 get a dedicated bin (they are infeasible anyway; the caller's
/// schedulability check rejects them).
pub fn best_fit_open(items: &[Item]) -> Vec<Vec<usize>> {
    let mut contents: Vec<Vec<usize>> = Vec::new();
    let mut loads: Vec<f64> = Vec::new();
    for item in items {
        let candidate = loads
            .iter()
            .enumerate()
            .filter(|(_, load)| *load + item.size <= 1.0 + 1e-9)
            .max_by(|(i, a), (j, b)| a.partial_cmp(b).expect("loads are finite").then(j.cmp(i)));
        match candidate {
            Some((bin, _)) => {
                contents[bin].push(item.id);
                loads[bin] += item.size;
            }
            None => {
                contents.push(vec![item.id]);
                loads.push(item.size);
            }
        }
    }
    contents
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(sizes: &[f64]) -> Vec<Item> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Item::new(i, s))
            .collect()
    }

    #[test]
    fn sort_is_decreasing_and_stable_by_id() {
        let mut v = items(&[0.2, 0.5, 0.2, 0.9]);
        sort_decreasing(&mut v);
        let ids: Vec<usize> = v.iter().map(|i| i.id).collect();
        assert_eq!(ids, vec![3, 1, 0, 2]);
    }

    #[test]
    fn worst_fit_balances() {
        let mut v = items(&[0.6, 0.5, 0.4, 0.3]);
        sort_decreasing(&mut v);
        let bins = worst_fit_fixed(&v, 2);
        // 0.6 → bin0; 0.5 → bin1; 0.4 → bin1 (0.5 < 0.6); 0.3 → bin0.
        assert_eq!(bins[0], vec![0, 3]);
        assert_eq!(bins[1], vec![1, 2]);
    }

    #[test]
    fn worst_fit_empty_items() {
        let bins = worst_fit_fixed(&[], 3);
        assert_eq!(bins.len(), 3);
        assert!(bins.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn worst_fit_zero_bins_panics() {
        let _ = worst_fit_fixed(&items(&[0.5]), 0);
    }

    #[test]
    fn best_fit_prefers_fullest_feasible_bin() {
        // 0.6 opens bin0; 0.5 opens bin1 (does not fit bin0);
        // 0.35 goes to bin0 (fuller than bin1 and fits).
        let v = items(&[0.6, 0.5, 0.35]);
        let bins = best_fit_open(&v);
        assert_eq!(bins, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn best_fit_opens_bins_as_needed() {
        let v = items(&[0.9, 0.9, 0.9]);
        let bins = best_fit_open(&v);
        assert_eq!(bins.len(), 3);
    }

    #[test]
    fn best_fit_oversized_item_gets_own_bin() {
        let v = items(&[1.5, 0.2]);
        let bins = best_fit_open(&v);
        assert_eq!(bins[0], vec![0]);
        assert_eq!(bins[1], vec![1]);
    }

    #[test]
    fn best_fit_exact_fill() {
        let v = items(&[0.5, 0.5, 0.5]);
        let bins = best_fit_open(&v);
        assert_eq!(bins, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_size_rejected() {
        let _ = Item::new(0, -0.1);
    }
}
