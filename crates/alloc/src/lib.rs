//! Multi-resource allocation algorithms for vC²M (Section 4 of the
//! paper).
//!
//! Given a set of VMs with real-time tasks on a multicore platform,
//! compute:
//!
//! 1. a set of VCPUs for each VM and an assignment of tasks to VCPUs
//!    (the **VM level**, [`vm_level`]);
//! 2. an assignment of VCPUs to cores and the number of cache and
//!    memory-bandwidth partitions for each core (the **hypervisor
//!    level**, [`hypervisor_level`]);
//!
//! such that every task meets its deadline.
//!
//! The crate implements all five solutions compared in the paper's
//! evaluation (Section 5) behind the [`Solution`] enum:
//!
//! | Solution | VM level | VCPU sizing | Hypervisor level |
//! |----------|----------|-------------|------------------|
//! | `HeuristicFlattening` | one VCPU per task | Theorem 1 | 3-phase heuristic |
//! | `HeuristicOverheadFree` | k-means clustering | Theorem 2 | 3-phase heuristic |
//! | `HeuristicExisting` | k-means clustering | periodic resource model | 3-phase heuristic |
//! | `EvenlyPartition` | best-fit bin packing | Theorem 2 | best-fit, even cache/BW |
//! | `Baseline` | best-fit bin packing | periodic resource model, worst-case WCETs | best-fit, resources ignored |
//!
//! # Example
//!
//! ```
//! use vc2m_alloc::{Solution, SystemAllocation};
//! use vc2m_model::{Platform, TaskSet, Task, TaskId, VmId, VmSpec, WcetSurface};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::platform_a();
//! let space = platform.resources();
//! let tasks: TaskSet = (0..4)
//!     .map(|i| Task::new(TaskId(i), 100.0, WcetSurface::flat(&space, 10.0).unwrap()))
//!     .collect::<Result<_, _>>()?;
//! let vms = vec![VmSpec::new(VmId(0), tasks)?];
//!
//! let outcome = Solution::HeuristicFlattening.allocate(&vms, &platform, 42);
//! let allocation: &SystemAllocation = outcome.allocation().expect("schedulable");
//! assert!(allocation.verify(&platform).is_ok());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod result;

pub mod admission;
pub mod degrade;
pub mod fleet;
pub mod hypervisor_level;
pub mod kmeans;
pub mod packing;
pub mod recovery;
pub mod solution;
pub mod vm_level;

pub use admission::{
    AdmissionConfig, AdmissionDecision, AdmissionEngine, AdmissionPath, AdmissionRequest,
    AdmissionStats, AdmissionVerdict, RequestKind,
};
pub use degrade::{
    allocate_with_degradation, allocate_with_degradation_prioritized, Criticality,
    DegradationOutcome, DegradationPolicy, DegradationReport, ShedVm,
};
pub use error::AllocError;
pub use fleet::{
    AdmissionFleet, EvacuationExhausted, EvacuationPolicy, FleetConfig, FleetDecision, FleetFault,
    FleetFaultPlan, FleetFaultSpec, FleetRouter, FleetScenario, FleetStats, FleetWorkItem,
    ScheduledFleetFault,
};
pub use recovery::{DecisionJournal, JournalRecord, RecoveryError};
pub use result::{AllocationOutcome, CoreAssignment, SystemAllocation};
pub use solution::Solution;
