//! Allocation results: the full system configuration an allocator
//! produces.

use crate::AllocError;
use std::collections::HashSet;
use std::fmt;
use vc2m_analysis::{core_check, DirtyCores};
use vc2m_model::{Alloc, Platform, VcpuSpec};

/// One core's share of an allocation: which VCPUs run on it, and its
/// cache/bandwidth partition counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreAssignment {
    /// Indices into the allocation's VCPU list.
    pub vcpus: Vec<usize>,
    /// The core's cache/bandwidth allocation.
    pub alloc: Alloc,
}

/// A complete allocation: the VCPUs (with their computed parameters),
/// and per-core VCPU assignments plus resource partitions.
///
/// Produced by the solutions in [`solution`](crate::solution); consumed
/// by the hypervisor simulator, which realizes it as periodic servers,
/// CAT masks and bandwidth budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemAllocation {
    pub(crate) vcpus: Vec<VcpuSpec>,
    pub(crate) cores: Vec<CoreAssignment>,
}

impl SystemAllocation {
    /// Assembles an allocation. Invariants are *not* checked here (the
    /// heuristics build candidates incrementally); call
    /// [`SystemAllocation::verify`] on the final result.
    pub fn new(vcpus: Vec<VcpuSpec>, cores: Vec<CoreAssignment>) -> Self {
        SystemAllocation { vcpus, cores }
    }

    /// The VCPUs with their computed parameters.
    pub fn vcpus(&self) -> &[VcpuSpec] {
        &self.vcpus
    }

    /// The per-core assignments.
    pub fn cores(&self) -> &[CoreAssignment] {
        &self.cores
    }

    /// Number of cores the allocation uses.
    pub fn cores_used(&self) -> usize {
        self.cores.len()
    }

    /// The VCPUs assigned to core `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn vcpus_on_core(&self, k: usize) -> impl Iterator<Item = &VcpuSpec> {
        self.cores[k].vcpus.iter().map(move |&i| &self.vcpus[i])
    }

    /// Utilization of core `k` under its assigned allocation.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn core_utilization(&self, k: usize) -> f64 {
        core_check::core_utilization(self.vcpus_on_core(k), self.cores[k].alloc)
    }

    /// Whether every core passes the EDF schedulability test under its
    /// assigned resources.
    pub fn is_schedulable(&self) -> bool {
        (0..self.cores.len()).all(|k| {
            let vcpus: Vec<&VcpuSpec> = self.vcpus_on_core(k).collect();
            core_check::core_schedulable(vcpus.iter().copied(), self.cores[k].alloc)
        })
    }

    /// Verifies all structural invariants against `platform`:
    ///
    /// * every VCPU is assigned to exactly one core;
    /// * no more cores are used than the platform has;
    /// * each core's allocation lies in the platform's resource space;
    /// * partition budgets hold: Σ cache ≤ C and Σ bandwidth ≤ B
    ///   (disjointness across cores);
    /// * every core is schedulable.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidAllocation`] naming the first
    /// violated invariant.
    pub fn verify(&self, platform: &Platform) -> Result<(), AllocError> {
        self.verify_cores(platform, &DirtyCores::all(self.cores.len()))
    }

    /// Partial verification for warm-started allocations: runs every
    /// *structural* invariant in full (they are cheap and global), but
    /// re-runs the per-core schedulability test only for the cores in
    /// `dirty`.
    ///
    /// Sound whenever every core outside `dirty` is content-identical
    /// (same VCPU parameters, same `Alloc`, or a subset of a previously
    /// proven core after departures) to a core that already passed the
    /// test — the EDF core test depends on nothing else. Callers are
    /// responsible for that premise; the admission conformance suite
    /// pins it against full verification bit-for-bit.
    ///
    /// With `dirty = DirtyCores::all(..)` this is exactly
    /// [`SystemAllocation::verify`].
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidAllocation`] naming the first
    /// violated invariant, like [`SystemAllocation::verify`].
    pub fn verify_cores(&self, platform: &Platform, dirty: &DirtyCores) -> Result<(), AllocError> {
        self.verify_cores_detailed(platform, dirty).map_err(|(_, e)| e)
    }

    /// Like [`SystemAllocation::verify_cores`], but a schedulability
    /// failure also reports *which* core failed (`Some(k)`), so the
    /// degradation controller can record which earlier cores were
    /// proven before the failure. Structural failures report `None`.
    pub(crate) fn verify_cores_detailed(
        &self,
        platform: &Platform,
        dirty: &DirtyCores,
    ) -> Result<(), (Option<usize>, AllocError)> {
        self.verify_structure(platform).map_err(|e| (None, e))?;
        for k in dirty.iter() {
            let vcpus: Vec<&VcpuSpec> = self.vcpus_on_core(k).collect();
            if !core_check::core_schedulable(vcpus.iter().copied(), self.cores[k].alloc) {
                return Err((
                    Some(k),
                    AllocError::InvalidAllocation {
                        detail: format!("core {k} fails the schedulability test"),
                    },
                ));
            }
        }
        Ok(())
    }

    /// Whether core `k` of `self` has exactly the same content as core
    /// `j` of `other`: the same `Alloc` and the same VCPU parameter
    /// sequence (compared by value, not by index — the two allocations
    /// may number their VCPU lists differently).
    ///
    /// Content equality is the premise under which a schedulability
    /// proof for one core transfers to the other.
    pub fn core_content_eq(&self, k: usize, other: &SystemAllocation, j: usize) -> bool {
        let a = &self.cores[k];
        let b = &other.cores[j];
        a.alloc == b.alloc
            && a.vcpus.len() == b.vcpus.len()
            && self
                .vcpus_on_core(k)
                .zip(other.vcpus_on_core(j))
                .all(|(x, y)| x == y)
    }

    /// The structural invariants of [`SystemAllocation::verify`] —
    /// everything except per-core schedulability.
    fn verify_structure(&self, platform: &Platform) -> Result<(), AllocError> {
        let space = platform.resources();
        if self.cores.len() > platform.cores() {
            return Err(AllocError::InvalidAllocation {
                detail: format!(
                    "{} cores used but the platform has {}",
                    self.cores.len(),
                    platform.cores()
                ),
            });
        }
        let mut seen = HashSet::new();
        for (k, core) in self.cores.iter().enumerate() {
            if space.check(core.alloc).is_err() {
                return Err(AllocError::InvalidAllocation {
                    detail: format!("core {k} allocation {} outside {space}", core.alloc),
                });
            }
            for &i in &core.vcpus {
                if i >= self.vcpus.len() {
                    return Err(AllocError::InvalidAllocation {
                        detail: format!("core {k} references unknown vcpu index {i}"),
                    });
                }
                if !seen.insert(i) {
                    return Err(AllocError::InvalidAllocation {
                        detail: format!("vcpu index {i} assigned to more than one core"),
                    });
                }
            }
        }
        if seen.len() != self.vcpus.len() {
            return Err(AllocError::InvalidAllocation {
                detail: format!(
                    "{} of {} vcpus are unassigned",
                    self.vcpus.len() - seen.len(),
                    self.vcpus.len()
                ),
            });
        }
        let cache_total: u32 = self.cores.iter().map(|c| c.alloc.cache).sum();
        if cache_total > space.cache_max() {
            return Err(AllocError::InvalidAllocation {
                detail: format!("cache overcommitted: {cache_total} > {}", space.cache_max()),
            });
        }
        let bw_total: u32 = self.cores.iter().map(|c| c.alloc.bandwidth).sum();
        if bw_total > space.bw_max() {
            return Err(AllocError::InvalidAllocation {
                detail: format!("bandwidth overcommitted: {bw_total} > {}", space.bw_max()),
            });
        }
        Ok(())
    }
}

impl fmt::Display for SystemAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "allocation: {} vcpus on {} cores",
            self.vcpus.len(),
            self.cores.len()
        )?;
        for (k, core) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "  core {k}: {} vcpus, {}, u={:.3}",
                core.vcpus.len(),
                core.alloc,
                self.core_utilization(k)
            )?;
        }
        Ok(())
    }
}

/// The outcome of running a solution on a workload: schedulable (with
/// the allocation) or not.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationOutcome {
    allocation: Option<SystemAllocation>,
}

impl AllocationOutcome {
    /// A schedulable outcome carrying its allocation.
    pub fn schedulable(allocation: SystemAllocation) -> Self {
        AllocationOutcome {
            allocation: Some(allocation),
        }
    }

    /// An unschedulable outcome.
    pub fn unschedulable() -> Self {
        AllocationOutcome { allocation: None }
    }

    /// Whether the workload was deemed schedulable.
    pub fn is_schedulable(&self) -> bool {
        self.allocation.is_some()
    }

    /// The allocation, if schedulable.
    pub fn allocation(&self) -> Option<&SystemAllocation> {
        self.allocation.as_ref()
    }

    /// Consumes the outcome, returning the allocation if schedulable.
    pub fn into_allocation(self) -> Option<SystemAllocation> {
        self.allocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{BudgetSurface, Platform, TaskId, VcpuId, VmId};

    fn vcpu(id: usize, period: f64, budget: f64) -> VcpuSpec {
        let space = Platform::platform_a().resources();
        VcpuSpec::new(
            VcpuId(id),
            VmId(0),
            period,
            BudgetSurface::flat(&space, budget).unwrap(),
            vec![TaskId(id)],
        )
        .unwrap()
    }

    fn simple_allocation() -> SystemAllocation {
        SystemAllocation::new(
            vec![vcpu(0, 10.0, 4.0), vcpu(1, 10.0, 5.0)],
            vec![
                CoreAssignment {
                    vcpus: vec![0],
                    alloc: Alloc::new(10, 10),
                },
                CoreAssignment {
                    vcpus: vec![1],
                    alloc: Alloc::new(10, 10),
                },
            ],
        )
    }

    #[test]
    fn valid_allocation_verifies() {
        let platform = Platform::platform_a();
        let a = simple_allocation();
        a.verify(&platform).unwrap();
        assert!(a.is_schedulable());
        assert_eq!(a.cores_used(), 2);
        assert!((a.core_utilization(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn double_assignment_detected() {
        let mut a = simple_allocation();
        a.cores[1].vcpus = vec![0];
        let err = a.verify(&Platform::platform_a()).unwrap_err();
        assert!(
            err.to_string().contains("more than one core")
                || err.to_string().contains("unassigned")
        );
    }

    #[test]
    fn unassigned_vcpu_detected() {
        let a = SystemAllocation::new(
            vec![vcpu(0, 10.0, 4.0), vcpu(1, 10.0, 5.0)],
            vec![CoreAssignment {
                vcpus: vec![0],
                alloc: Alloc::new(10, 10),
            }],
        );
        assert!(a.verify(&Platform::platform_a()).is_err());
    }

    #[test]
    fn cache_overcommit_detected() {
        let mut a = simple_allocation();
        a.cores[0].alloc = Alloc::new(12, 10);
        a.cores[1].alloc = Alloc::new(12, 10);
        let err = a.verify(&Platform::platform_a()).unwrap_err();
        assert!(err.to_string().contains("cache overcommitted"));
    }

    #[test]
    fn bw_overcommit_detected() {
        let mut a = simple_allocation();
        a.cores[0].alloc = Alloc::new(10, 12);
        a.cores[1].alloc = Alloc::new(10, 12);
        let err = a.verify(&Platform::platform_a()).unwrap_err();
        assert!(err.to_string().contains("bandwidth overcommitted"));
    }

    #[test]
    fn too_many_cores_detected() {
        let a = SystemAllocation::new(
            (0..5).map(|i| vcpu(i, 10.0, 1.0)).collect(),
            (0..5)
                .map(|i| CoreAssignment {
                    vcpus: vec![i],
                    alloc: Alloc::new(2, 2),
                })
                .collect(),
        );
        let err = a.verify(&Platform::platform_a()).unwrap_err();
        assert!(err.to_string().contains("cores used"));
    }

    #[test]
    fn unschedulable_core_detected() {
        let a = SystemAllocation::new(
            vec![vcpu(0, 10.0, 6.0), vcpu(1, 10.0, 6.0)],
            vec![CoreAssignment {
                vcpus: vec![0, 1],
                alloc: Alloc::new(10, 10),
            }],
        );
        assert!(!a.is_schedulable());
        assert!(a.verify(&Platform::platform_a()).is_err());
    }

    #[test]
    fn verify_cores_skips_clean_cores_but_checks_structure() {
        let platform = Platform::platform_a();
        // Core 0 is unschedulable (utilization 1.2), core 1 fine.
        let a = SystemAllocation::new(
            vec![vcpu(0, 10.0, 6.0), vcpu(1, 10.0, 6.0), vcpu(2, 10.0, 4.0)],
            vec![
                CoreAssignment {
                    vcpus: vec![0, 1],
                    alloc: Alloc::new(10, 10),
                },
                CoreAssignment {
                    vcpus: vec![2],
                    alloc: Alloc::new(10, 10),
                },
            ],
        );
        // Full verification fails on core 0.
        assert!(a.verify(&platform).is_err());
        // A dirty set containing only core 1 skips the bad core — the
        // caller vouched for it; this is exactly why soundness rests on
        // the content-equality premise.
        let mut only_1 = DirtyCores::new();
        only_1.mark(1);
        a.verify_cores(&platform, &only_1).unwrap();
        // A dirty set containing core 0 catches it and names it.
        let mut only_0 = DirtyCores::new();
        only_0.mark(0);
        let err = a.verify_cores(&platform, &only_0).unwrap_err();
        assert!(err.to_string().contains("core 0 fails"));
        // Structural violations are always caught, whatever the set.
        let mut broken = a.clone();
        broken.cores[0].alloc = Alloc::new(30, 10);
        assert!(broken.verify_cores(&platform, &DirtyCores::new()).is_err());
    }

    #[test]
    fn verify_cores_all_equals_full_verify() {
        let platform = Platform::platform_a();
        let good = simple_allocation();
        assert_eq!(
            good.verify(&platform),
            good.verify_cores(&platform, &DirtyCores::all(good.cores_used()))
        );
        let bad = SystemAllocation::new(
            vec![vcpu(0, 10.0, 6.0), vcpu(1, 10.0, 6.0)],
            vec![CoreAssignment {
                vcpus: vec![0, 1],
                alloc: Alloc::new(10, 10),
            }],
        );
        assert_eq!(
            bad.verify(&platform),
            bad.verify_cores(&platform, &DirtyCores::all(bad.cores_used()))
        );
    }

    #[test]
    fn core_content_equality_ignores_index_numbering() {
        let a = simple_allocation();
        // Same content, vcpus stored in swapped order with swapped
        // index lists: core 0 of `a` matches core 1 of `b`.
        let b = SystemAllocation::new(
            vec![vcpu(1, 10.0, 5.0), vcpu(0, 10.0, 4.0)],
            vec![
                CoreAssignment {
                    vcpus: vec![0],
                    alloc: Alloc::new(10, 10),
                },
                CoreAssignment {
                    vcpus: vec![1],
                    alloc: Alloc::new(10, 10),
                },
            ],
        );
        assert!(a.core_content_eq(0, &b, 1));
        assert!(a.core_content_eq(1, &b, 0));
        assert!(!a.core_content_eq(0, &b, 0));
        // A partition change breaks content equality even with the
        // same vcpus.
        let mut c = a.clone();
        c.cores[0].alloc = Alloc::new(9, 10);
        assert!(!a.core_content_eq(0, &c, 0));
    }

    #[test]
    fn outcome_accessors() {
        let yes = AllocationOutcome::schedulable(simple_allocation());
        assert!(yes.is_schedulable());
        assert!(yes.allocation().is_some());
        assert!(yes.into_allocation().is_some());
        let no = AllocationOutcome::unschedulable();
        assert!(!no.is_schedulable());
        assert!(no.allocation().is_none());
    }

    #[test]
    fn display_lists_cores() {
        let s = simple_allocation().to_string();
        assert!(s.contains("core 0"));
        assert!(s.contains("core 1"));
    }
}
