//! Streaming VM admission with warm-started re-allocation.
//!
//! The static entry points ([`Solution::allocate`],
//! [`allocate_with_degradation`]) solve one system from scratch. A live
//! hypervisor instead sees a *stream* of requests — VMs arrive, depart,
//! and change modes — and must answer admit/reject/degrade against its
//! current state. [`AdmissionEngine`] is that long-running controller.
//!
//! # Semantics (the canonical, replayable definition)
//!
//! The engine's state after each request is defined by the following
//! deterministic process; the differential conformance suite replays
//! exactly this definition with a full verifier and no caches and pins
//! the optimised engine against it bit-for-bit.
//!
//! * **Arrival** — reject a duplicate [`VmId`]; reject immediately when
//!   total reference utilization would exceed platform capacity (a
//!   necessary condition for any allocation). Otherwise *warm-start*:
//!   run the VM level for just the new VM (seeded per VM, see below),
//!   then place its VCPUs — heaviest first — by first fit over the
//!   current cores, upgrading a core's partitions from the spare pool
//!   (greedy, largest marginal utilization reduction, cache on ties)
//!   or opening a new core when needed. Only the *perturbed* cores are
//!   then re-verified ([`SystemAllocation::verify_cores`]); untouched
//!   cores keep their standing proof. If incremental placement fails,
//!   fall back to a full repack: [`allocate_with_degradation`] over
//!   the whole working set plus the newcomer with a **no-shed** policy
//!   (one attempt), so an arrival can never evict an admitted VM. If
//!   the repack also fails, the arrival is rejected and the state is
//!   untouched.
//! * **Departure** — remove the VM's VCPUs in place, compact indices,
//!   and drop emptied cores (their partitions return to the spare
//!   pool). Removal only ever shrinks per-core demand, so no
//!   re-verification is needed on the fast path; the reference mode
//!   re-proves it after every departure.
//! * **Mode change** — atomically replace the VM's taskset: remove the
//!   old mode, then admit the new one under the same id (with a fresh
//!   per-VM parameter stream). On failure the engine rolls back to the
//!   snapshot and reports [`AdmissionVerdict::Degraded`] — the VM keeps
//!   running in its previous mode.
//! * **Batch** — concurrent arrivals are first put in a canonical
//!   order (decreasing utilization, [`VmId`] on ties), which makes the
//!   batch outcome independent of submission order, then admitted in
//!   one pass sharing a merged dirty set that is verified once at the
//!   batch boundary.
//!
//! # Determinism
//!
//! Same trace + same seed ⇒ byte-identical decision log. Every random
//! choice is derived from the engine seed: the VM level for an
//! arriving VM uses a stream that is a pure function of
//! `(engine seed, VmId, mode revision)`, and the repack path passes
//! the engine seed to [`allocate_with_degradation`], so a repack
//! result is a pure function of the working set. No wall clock, no
//! global state.
//!
//! # Safety guarantee
//!
//! An admitted system is never unschedulable: every admitting path
//! ends in a verifier pass — dirty-set on the fast path, full inside
//! the repack — and rejected requests leave the state untouched. The
//! seeded property suite asserts `verify()` after every request.
//!
//! [`allocate_with_degradation`]: crate::allocate_with_degradation

use crate::degrade::{allocate_with_degradation, DegradationPolicy};
use crate::error::AllocError;
use crate::result::{CoreAssignment, SystemAllocation};
use crate::solution::Solution;
use std::cmp::Ordering;
use std::collections::HashMap;
use vc2m_analysis::core_check::{self, UTILIZATION_EPS};
use vc2m_analysis::{AnalysisCache, DirtyCores};
use vc2m_model::{Alloc, Platform, VcpuId, VcpuSpec, VmId, VmSpec};
use vc2m_rng::{DetRng, Rng, SplitMix64};
use vc2m_simcore::MetricsRegistry;

/// Engine configuration: which solution solves, and the seed every
/// random choice derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// The allocation strategy for both warm-start VM-level runs and
    /// repacks (default: [`Solution::Auto`]).
    pub solution: Solution,
    /// Seed for all randomized choices (see the module docs).
    pub seed: u64,
    /// Reference mode: disable the analysis cache and replace every
    /// dirty-set verification with a full [`SystemAllocation::verify`]
    /// (departures included). Semantically identical to the fast mode
    /// — the conformance suite pins that — but with no warm-start
    /// verification shortcuts, so it serves as the slow differential
    /// oracle. Reference mode also disables the rejection memo.
    pub reference: bool,
    /// Saturated-regime rejection memo: remember solver rejections
    /// keyed by `(state signature, newcomer signature)` so a repeat of
    /// a just-failed arrival skips the failing solver search. The memo
    /// never changes a decision — memo-on and memo-off decision logs
    /// are bit-identical (pinned by the conformance suite) — only the
    /// cost of reaching it.
    pub memo: bool,
}

impl AdmissionConfig {
    /// The default configuration for `seed`: [`Solution::Auto`], fast
    /// mode, rejection memo enabled.
    pub fn new(seed: u64) -> Self {
        AdmissionConfig {
            solution: Solution::Auto,
            seed,
            reference: false,
            memo: true,
        }
    }

    /// Replaces the solution.
    pub fn with_solution(mut self, solution: Solution) -> Self {
        self.solution = solution;
        self
    }

    /// Switches to reference (slow differential oracle) mode. The
    /// oracle stays maximally naive: the rejection memo is disabled
    /// along with the analysis cache.
    pub fn reference_mode(mut self) -> Self {
        self.reference = true;
        self.memo = false;
        self
    }

    /// Disables the rejection memo (every rejection re-runs the full
    /// failing search). Used by the conformance suite and the
    /// memo-off benchmark arm.
    pub fn without_memo(mut self) -> Self {
        self.memo = false;
        self
    }
}

/// One request against the live hypervisor state.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionRequest {
    /// A new VM asks to be admitted.
    Arrival(VmSpec),
    /// An admitted VM leaves, freeing its resources.
    Departure(VmId),
    /// An admitted VM asks to switch to a new taskset (same id).
    ModeChange(VmSpec),
}

/// Which path admitted a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPath {
    /// Warm-start placement into the current allocation; only the
    /// perturbed cores were re-verified.
    Incremental,
    /// Full re-allocation of the working set via
    /// [`allocate_with_degradation`](crate::allocate_with_degradation)
    /// (no-shed policy).
    Repack,
}

impl AdmissionPath {
    /// Stable lower-case name, used in the decision log.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPath::Incremental => "incremental",
            AdmissionPath::Repack => "repack",
        }
    }
}

/// The engine's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// The VM (or its new mode) was admitted.
    Admitted {
        /// Which path admitted it.
        path: AdmissionPath,
    },
    /// The request was refused; the state is untouched.
    Rejected {
        /// Why, for the operator's log.
        reason: String,
    },
    /// A mode change was refused; the VM keeps running in its
    /// previous (degraded) mode.
    Degraded {
        /// Why the new mode was not admittable.
        reason: String,
    },
    /// A departure completed.
    Departed,
}

/// The kind of a request, for the decision log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// An [`AdmissionRequest::Arrival`].
    Arrival,
    /// An [`AdmissionRequest::Departure`].
    Departure,
    /// An [`AdmissionRequest::ModeChange`].
    ModeChange,
}

impl RequestKind {
    /// Stable lower-case name, used in the decision log.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Arrival => "arrive",
            RequestKind::Departure => "depart",
            RequestKind::ModeChange => "mode",
        }
    }
}

/// One entry of the decision log: the request, the verdict, and the
/// post-request system state.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDecision {
    /// Zero-based position in the decision log.
    pub index: u64,
    /// The request kind.
    pub kind: RequestKind,
    /// The VM the request concerned.
    pub vm: VmId,
    /// The VM's reference utilization (the departing spec's for
    /// departures; `0` when the VM was unknown).
    pub utilization: f64,
    /// The verdict.
    pub verdict: AdmissionVerdict,
    /// Admitted VMs after the request.
    pub vms: usize,
    /// Live VCPUs after the request.
    pub vcpus: usize,
    /// Cores in use after the request.
    pub cores: usize,
    /// Total admitted reference utilization after the request.
    pub load: f64,
}

impl AdmissionDecision {
    /// Renders the byte-stable log line this decision contributes to
    /// the decision log (fixed-width index, fixed six-digit floats).
    pub fn log_line(&self) -> String {
        let verdict = match &self.verdict {
            AdmissionVerdict::Admitted { path } => format!("admitted/{}", path.name()),
            AdmissionVerdict::Rejected { reason } => format!("rejected ({reason})"),
            AdmissionVerdict::Degraded { reason } => format!("degraded ({reason})"),
            AdmissionVerdict::Departed => "departed".to_string(),
        };
        format!(
            "#{:05} {} vm={} u={:.6} -> {} | vms={} vcpus={} cores={} load={:.6}",
            self.index,
            self.kind.name(),
            self.vm.0,
            self.utilization,
            verdict,
            self.vms,
            self.vcpus,
            self.cores,
            self.load,
        )
    }
}

/// Engine counters, exported as the `admission.*` metrics family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests processed (batch items count individually).
    pub requests: u64,
    /// Batches processed.
    pub batches: u64,
    /// Arrivals/mode changes admitted by warm-start placement.
    pub admitted_incremental: u64,
    /// Arrivals/mode changes admitted by a full repack.
    pub admitted_repack: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Mode changes refused (VM kept its previous mode).
    pub degraded: u64,
    /// Departures completed.
    pub departed: u64,
    /// Arrivals rejected by the utilization capacity pre-filter
    /// (no solver work spent).
    pub capacity_rejects: u64,
    /// Full repacks attempted (admitted or not).
    pub repack_attempts: u64,
    /// Cores opened by incremental placement.
    pub cores_opened: u64,
    /// Partition upgrades granted from the spare pool.
    pub core_upgrades: u64,
    /// Cores re-verified via the dirty-set path.
    pub dirty_cores_verified: u64,
    /// Full verifications run (reference mode and batch boundaries).
    pub full_verifies: u64,
    /// Arrivals rejected straight from the rejection memo (no solver
    /// search run).
    pub memo_hits: u64,
    /// Solver rejections recorded into the memo.
    pub memo_inserts: u64,
    /// Memo invalidations (any state mutation clears it).
    pub memo_invalidations: u64,
}

impl AdmissionStats {
    /// Exports the counters under the `admission.` prefix.
    pub fn export_metrics(&self, out: &mut MetricsRegistry) {
        out.counter_add("admission.requests", self.requests);
        out.counter_add("admission.batches", self.batches);
        out.counter_add("admission.admitted_incremental", self.admitted_incremental);
        out.counter_add("admission.admitted_repack", self.admitted_repack);
        out.counter_add("admission.rejected", self.rejected);
        out.counter_add("admission.degraded", self.degraded);
        out.counter_add("admission.departed", self.departed);
        out.counter_add("admission.capacity_rejects", self.capacity_rejects);
        out.counter_add("admission.repack_attempts", self.repack_attempts);
        out.counter_add("admission.cores_opened", self.cores_opened);
        out.counter_add("admission.core_upgrades", self.core_upgrades);
        out.counter_add("admission.dirty_cores_verified", self.dirty_cores_verified);
        out.counter_add("admission.full_verifies", self.full_verifies);
        out.counter_add("admission.memo_hits", self.memo_hits);
        out.counter_add("admission.memo_inserts", self.memo_inserts);
        out.counter_add("admission.memo_invalidations", self.memo_invalidations);
    }

    /// Field-wise sum, for fleet-level aggregation across host
    /// engines.
    pub fn merged(mut self, other: &AdmissionStats) -> AdmissionStats {
        self.requests += other.requests;
        self.batches += other.batches;
        self.admitted_incremental += other.admitted_incremental;
        self.admitted_repack += other.admitted_repack;
        self.rejected += other.rejected;
        self.degraded += other.degraded;
        self.departed += other.departed;
        self.capacity_rejects += other.capacity_rejects;
        self.repack_attempts += other.repack_attempts;
        self.cores_opened += other.cores_opened;
        self.core_upgrades += other.core_upgrades;
        self.dirty_cores_verified += other.dirty_cores_verified;
        self.full_verifies += other.full_verifies;
        self.memo_hits += other.memo_hits;
        self.memo_inserts += other.memo_inserts;
        self.memo_invalidations += other.memo_invalidations;
        self
    }
}

/// Canonical concurrent-arrival order (decreasing utilization, then
/// [`VmId`] ascending): the total order both the engine's batch
/// admission and the fleet's cross-shard batch routing sort by, so a
/// batch's outcome never depends on its submission permutation.
pub(crate) fn canonical_vm_order(a: &VmSpec, b: &VmSpec) -> Ordering {
    b.reference_utilization()
        .partial_cmp(&a.reference_utilization())
        .unwrap_or(Ordering::Equal)
        .then(a.id().0.cmp(&b.id().0))
}

/// FNV-1a 64-bit step, the stable in-tree hash behind the memo
/// signatures (no `RandomState`, so signatures are identical across
/// runs and platforms).
fn fnv_mix(hash: &mut u64, word: u64) {
    *hash ^= word;
    *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
}

/// Content signature of a VM spec: id plus every task's id, period
/// bits, and full WCET surface bits. Two VMs with equal signatures are
/// interchangeable inputs to the solver.
fn vm_signature(vm: &VmSpec) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    fnv_mix(&mut hash, vm.id().0 as u64);
    for task in vm.tasks().iter() {
        fnv_mix(&mut hash, task.id().0 as u64);
        fnv_mix(&mut hash, task.period().to_bits());
        for (_, wcet) in task.wcet_surface().iter() {
            fnv_mix(&mut hash, wcet.to_bits());
        }
    }
    hash
}

/// The saturated-regime rejection memo: solver rejections keyed by
/// `(engine-state signature, newcomer signature)`.
///
/// Soundness: the engine is deterministic, so an arrival's verdict is
/// a pure function of the engine state (working set, VCPUs, core
/// layout) and the newcomer spec. The state signature hashes all of
/// that content, and the memo is *additionally* cleared on every state
/// mutation (admission, departure, committed mode change), so a hit
/// can only occur when the exact failing computation would be re-run —
/// the memo replays its recorded verdict instead. Decision logs with
/// the memo on and off are therefore bit-identical (pinned by the
/// conformance suite); only `memo_*` counters differ.
#[derive(Debug, Default)]
struct RejectionMemo {
    entries: HashMap<(u64, u64), String>,
}

impl RejectionMemo {
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn get(&self, key: (u64, u64)) -> Option<&String> {
        self.entries.get(&key)
    }

    fn insert(&mut self, key: (u64, u64), reason: String) {
        self.entries.insert(key, reason);
    }

    fn clear(&mut self) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        self.entries.clear();
        true
    }
}

/// The no-shed repack policy: one attempt, so an arrival can never
/// evict an already admitted VM.
const REPACK_POLICY: DegradationPolicy = DegradationPolicy { max_attempts: 1 };

/// Snapshot of the mutable engine state, for mode-change rollback and
/// the batch safety net.
#[derive(Debug, Clone)]
struct StateSnapshot {
    vms: Vec<VmSpec>,
    revisions: Vec<u64>,
    vcpus: Vec<VcpuSpec>,
    cores: Vec<CoreAssignment>,
    next_vcpu_id: usize,
}

/// The long-running admission controller. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionEngine {
    platform: Platform,
    config: AdmissionConfig,
    cache: AnalysisCache,
    /// Admitted VMs in admission order (the repack working set order).
    vms: Vec<VmSpec>,
    /// Mode revision per admitted VM (parallel to `vms`).
    revisions: Vec<u64>,
    /// Live VCPUs; `cores` hold indices into this list.
    vcpus: Vec<VcpuSpec>,
    cores: Vec<CoreAssignment>,
    /// Monotone VCPU id counter (never reused across arrivals, reset
    /// only by a repack, which renumbers everything).
    next_vcpu_id: usize,
    next_index: u64,
    decisions: Vec<AdmissionDecision>,
    stats: AdmissionStats,
    memo: RejectionMemo,
    /// Armed transient verification faults (fleet fault injection):
    /// each pending fault makes one `verify_state` call fail with a
    /// typed injected error before running the verifier.
    injected_verify_faults: u64,
}

impl AdmissionEngine {
    /// Creates an engine with an empty working set.
    pub fn new(platform: Platform, config: AdmissionConfig) -> Self {
        let cache = if config.reference {
            AnalysisCache::disabled()
        } else {
            AnalysisCache::enabled()
        };
        AdmissionEngine {
            platform,
            config,
            cache,
            vms: Vec::new(),
            revisions: Vec::new(),
            vcpus: Vec::new(),
            cores: Vec::new(),
            next_vcpu_id: 0,
            next_index: 0,
            decisions: Vec::new(),
            stats: AdmissionStats::default(),
            memo: RejectionMemo::default(),
            injected_verify_faults: 0,
        }
    }

    /// Arms one transient verification failure: the next state
    /// verification this engine attempts fails with a typed injected
    /// error *instead of* running the verifier, which forces the
    /// caller's normal failure fallback (an incremental arrival falls
    /// back to the full repack, a batch falls back to per-item
    /// re-admission). The fault is consumed exactly once, is fully
    /// deterministic, and leaves no trace beyond the changed admission
    /// path — used by the fleet's `verify-fault` injection.
    pub fn inject_verify_failure(&mut self) {
        self.injected_verify_faults += 1;
    }

    /// The platform this engine manages.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The admitted VMs, in admission order.
    pub fn working_set(&self) -> &[VmSpec] {
        &self.vms
    }

    /// The current allocation (empty when nothing is admitted).
    pub fn allocation(&self) -> SystemAllocation {
        SystemAllocation::new(self.vcpus.clone(), self.cores.clone())
    }

    /// The decision log so far.
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Renders the full decision log, one byte-stable line per
    /// decision, newline-terminated.
    pub fn log_text(&self) -> String {
        let mut text = String::new();
        for d in &self.decisions {
            text.push_str(&d.log_line());
            text.push('\n');
        }
        text
    }

    /// Engine counters.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Exports `admission.*` counters, post-state gauges, and the
    /// warm-start analysis-cache statistics.
    pub fn export_metrics(&self, out: &mut MetricsRegistry) {
        self.stats.export_metrics(out);
        out.gauge_set("admission.vms", self.vms.len() as f64);
        out.gauge_set("admission.vcpus", self.vcpus.len() as f64);
        out.gauge_set("admission.cores", self.cores.len() as f64);
        out.gauge_set("admission.load", self.total_load());
        self.cache.stats().export_metrics("admission.cache.", out);
    }

    /// Processes one request and returns its decision (also appended
    /// to the log).
    pub fn submit(&mut self, request: AdmissionRequest) -> &AdmissionDecision {
        self.stats.requests += 1;
        match request {
            AdmissionRequest::Arrival(vm) => {
                let utilization = vm.reference_utilization();
                let id = vm.id();
                let verdict = self.admit_vm(vm, 0, None);
                self.push_decision(RequestKind::Arrival, id, utilization, verdict)
            }
            AdmissionRequest::Departure(id) => {
                let utilization = self
                    .position(id)
                    .map(|p| self.vms[p].reference_utilization())
                    .unwrap_or(0.0);
                let verdict = self.process_departure(id);
                self.push_decision(RequestKind::Departure, id, utilization, verdict)
            }
            AdmissionRequest::ModeChange(vm) => {
                let utilization = vm.reference_utilization();
                let id = vm.id();
                let verdict = self.process_mode_change(vm);
                self.push_decision(RequestKind::ModeChange, id, utilization, verdict)
            }
        }
    }

    /// Admits a batch of concurrent arrivals in one pass.
    ///
    /// The batch is first put in canonical order (decreasing
    /// utilization, [`VmId`] on ties), so the outcome — decisions and
    /// final state — does not depend on the submission order within
    /// the batch. Incremental placements share one merged dirty set,
    /// verified once at the batch boundary (per-core schedulability is
    /// still established during each placement). Returns the batch's
    /// decisions in canonical order.
    pub fn submit_batch(&mut self, arrivals: Vec<AdmissionRequest>) -> &[AdmissionDecision] {
        self.stats.batches += 1;
        let mut vms: Vec<VmSpec> = Vec::new();
        let first = self.decisions.len();
        for request in arrivals {
            match request {
                AdmissionRequest::Arrival(vm) => vms.push(vm),
                // Only arrivals are concurrent-admission candidates;
                // anything else in a batch is processed in place,
                // after the arrivals, in submission order.
                other => {
                    let _ = self.submit(other);
                }
            }
        }
        // Process any non-arrival stragglers *after* sorting semantics
        // would be ambiguous — keep it simple and deterministic by
        // processing arrivals first in canonical order. (Traces only
        // put arrivals in batches.)
        vms.sort_by(Self::canonical_order);
        let snapshot = self.snapshot();
        let saved = (self.stats, self.next_index, self.decisions.len());
        let mut merged = DirtyCores::new();
        for vm in &vms {
            self.stats.requests += 1;
            let utilization = vm.reference_utilization();
            let verdict = self.admit_vm(vm.clone(), 0, Some(&mut merged));
            self.push_decision(RequestKind::Arrival, vm.id(), utilization, verdict);
        }
        // The batch boundary safety net: one verification over the
        // merged dirty set (full in reference mode).
        if self.verify_state(&merged).is_err() {
            // Should be unreachable — placement proves each touched
            // core — but if the net ever catches something, fall back
            // to strictly per-item admission, which verifies each
            // step, rather than publish an unproven state.
            self.restore(snapshot);
            self.stats = saved.0;
            self.next_index = saved.1;
            self.decisions.truncate(saved.2);
            for vm in &vms {
                self.stats.requests += 1;
                let utilization = vm.reference_utilization();
                let verdict = self.admit_vm(vm.clone(), 0, None);
                self.push_decision(RequestKind::Arrival, vm.id(), utilization, verdict);
            }
        }
        &self.decisions[first..]
    }

    /// Total admitted reference utilization (working-set order sum —
    /// deterministic).
    fn total_load(&self) -> f64 {
        self.vms.iter().map(|v| v.reference_utilization()).sum()
    }

    /// Canonical within-batch order: decreasing utilization, then
    /// [`VmId`] ascending — a total order over distinct VMs, so any
    /// permutation of a batch sorts identically. (Shared with the
    /// fleet's cross-shard batch routing via [`canonical_vm_order`].)
    fn canonical_order(a: &VmSpec, b: &VmSpec) -> Ordering {
        canonical_vm_order(a, b)
    }

    fn position(&self, id: VmId) -> Option<usize> {
        self.vms.iter().position(|v| v.id() == id)
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            vms: self.vms.clone(),
            revisions: self.revisions.clone(),
            vcpus: self.vcpus.clone(),
            cores: self.cores.clone(),
            next_vcpu_id: self.next_vcpu_id,
        }
    }

    fn restore(&mut self, snapshot: StateSnapshot) {
        self.vms = snapshot.vms;
        self.revisions = snapshot.revisions;
        self.vcpus = snapshot.vcpus;
        self.cores = snapshot.cores;
        self.next_vcpu_id = snapshot.next_vcpu_id;
    }

    fn push_decision(
        &mut self,
        kind: RequestKind,
        vm: VmId,
        utilization: f64,
        verdict: AdmissionVerdict,
    ) -> &AdmissionDecision {
        let decision = AdmissionDecision {
            index: self.next_index,
            kind,
            vm,
            utilization,
            verdict,
            vms: self.vms.len(),
            vcpus: self.vcpus.len(),
            cores: self.cores.len(),
            load: self.total_load(),
        };
        self.next_index += 1;
        self.decisions.push(decision);
        self.decisions.last().expect("just pushed")
    }

    /// The shared admit path for arrivals and (internally) the arrival
    /// half of a mode change. `revision` selects the VM's parameter
    /// stream; `batch_dirty` collects perturbed cores instead of
    /// verifying per item.
    fn admit_vm(
        &mut self,
        vm: VmSpec,
        revision: u64,
        mut batch_dirty: Option<&mut DirtyCores>,
    ) -> AdmissionVerdict {
        if self.position(vm.id()).is_some() {
            self.stats.rejected += 1;
            return AdmissionVerdict::Rejected {
                reason: format!("vm {} already admitted", vm.id().0),
            };
        }
        // Necessary-condition pre-filter: any allocation implies
        // Σ utilization ≤ m(1+ε) at *reference* resources or better,
        // so demand beyond that is rejected without solver work.
        let capacity = self.platform.max_usable_cores() as f64 * (1.0 + UTILIZATION_EPS);
        let demand = self.total_load() + vm.reference_utilization();
        if demand > capacity {
            self.stats.rejected += 1;
            self.stats.capacity_rejects += 1;
            return AdmissionVerdict::Rejected {
                reason: format!("demand {demand:.6} exceeds capacity {capacity:.6}"),
            };
        }

        // Saturated-regime memo: a repeat of a just-failed arrival
        // against the unchanged state replays its recorded rejection
        // instead of re-running the failing search. Signatures are
        // computed lazily — the memo is empty outside the saturated
        // regime (every state mutation clears it), so the churn-regime
        // fast path never hashes anything.
        let memo_key = if self.config.memo && !self.memo.is_empty() {
            let key = (self.state_signature(), vm_signature(&vm));
            if let Some(reason) = self.memo.get(key) {
                self.stats.memo_hits += 1;
                self.stats.rejected += 1;
                return AdmissionVerdict::Rejected {
                    reason: reason.clone(),
                };
            }
            Some(key)
        } else {
            None
        };

        // Warm start: place only the newcomer; untouched cores keep
        // their standing schedulability proof.
        let saved_cores = self.cores.clone();
        let saved_vcpus_len = self.vcpus.len();
        let saved_next = self.next_vcpu_id;
        if let Some(dirty) = self.place_incremental(&vm, revision) {
            let verified = match batch_dirty.as_deref_mut() {
                Some(merged) => {
                    // Batch mode: defer the net to the batch boundary;
                    // placement already proved each touched core.
                    merged.merge(&dirty);
                    Ok(())
                }
                None => self.verify_state(&dirty),
            };
            match verified {
                Ok(()) => {
                    self.vms.push(vm);
                    self.revisions.push(revision);
                    self.stats.admitted_incremental += 1;
                    self.invalidate_memo();
                    return AdmissionVerdict::Admitted {
                        path: AdmissionPath::Incremental,
                    };
                }
                Err(_) => {
                    // Unreachable in practice (placement proves every
                    // dirty core); fall back to the repack, which
                    // fully re-verifies.
                    self.cores = saved_cores;
                    self.vcpus.truncate(saved_vcpus_len);
                    self.next_vcpu_id = saved_next;
                }
            }
        } else {
            self.cores = saved_cores;
            self.vcpus.truncate(saved_vcpus_len);
            self.next_vcpu_id = saved_next;
        }
        let newcomer_sig = if self.config.memo {
            memo_key.map(|(_, sig)| sig).or_else(|| Some(vm_signature(&vm)))
        } else {
            None
        };
        let verdict = self.repack(vm, revision);
        match &verdict {
            AdmissionVerdict::Admitted { .. } => {
                self.invalidate_memo();
                // A repack renumbered every core; dirty indices
                // collected so far in this batch are stale, and the
                // repack itself verified the whole allocation, so the
                // merged set resets.
                if let Some(merged) = batch_dirty {
                    merged.clear();
                }
            }
            AdmissionVerdict::Rejected { reason } => {
                // The expensive failing search just ran; the state is
                // untouched, so its signature still describes the
                // state the verdict was computed against.
                if let Some(sig) = newcomer_sig {
                    let state = memo_key
                        .map(|(state, _)| state)
                        .unwrap_or_else(|| self.state_signature());
                    self.memo.insert((state, sig), reason.clone());
                    self.stats.memo_inserts += 1;
                }
            }
            _ => {}
        }
        verdict
    }

    /// Clears the rejection memo after a state mutation (admission or
    /// departure): recorded rejections were computed against capacity
    /// that no longer exists in that shape.
    fn invalidate_memo(&mut self) {
        if self.memo.clear() {
            self.stats.memo_invalidations += 1;
        }
    }

    /// Content signature of the whole mutable engine state: the
    /// working set (specs and revisions, in sequence) plus the live
    /// VCPUs and core layout. Equal signatures mean the next arrival
    /// decision is computed from identical inputs.
    fn state_signature(&self) -> u64 {
        let mut hash = 0x84_22_23_25_CB_F2_9C_E4u64;
        for (vm, revision) in self.vms.iter().zip(&self.revisions) {
            fnv_mix(&mut hash, vm_signature(vm));
            fnv_mix(&mut hash, *revision);
        }
        for vcpu in &self.vcpus {
            fnv_mix(&mut hash, vcpu.id().0 as u64);
            fnv_mix(&mut hash, vcpu.vm().0 as u64);
            fnv_mix(&mut hash, vcpu.period().to_bits());
            for (_, budget) in vcpu.budget_surface().iter() {
                fnv_mix(&mut hash, budget.to_bits());
            }
        }
        for core in &self.cores {
            fnv_mix(&mut hash, u64::from(core.alloc.cache));
            fnv_mix(&mut hash, u64::from(core.alloc.bandwidth));
            for &index in &core.vcpus {
                fnv_mix(&mut hash, index as u64);
            }
            fnv_mix(&mut hash, u64::MAX); // core boundary
        }
        hash
    }

    /// Full repack fallback: re-allocate the whole working set plus
    /// the newcomer from scratch (no-shed policy — failure rejects the
    /// newcomer, never an incumbent).
    fn repack(&mut self, vm: VmSpec, revision: u64) -> AdmissionVerdict {
        self.stats.repack_attempts += 1;
        let mut candidate: Vec<VmSpec> = self.vms.clone();
        candidate.push(vm);
        let outcome = allocate_with_degradation(
            self.config.solution,
            &candidate,
            &self.platform,
            self.config.seed,
            &REPACK_POLICY,
        );
        match outcome.allocation {
            Some(allocation) => {
                self.vms = candidate;
                self.revisions.push(revision);
                self.vcpus = allocation.vcpus().to_vec();
                self.cores = allocation.cores().to_vec();
                self.next_vcpu_id = self.vcpus.len();
                self.stats.admitted_repack += 1;
                AdmissionVerdict::Admitted {
                    path: AdmissionPath::Repack,
                }
            }
            None => {
                self.stats.rejected += 1;
                let reason = outcome
                    .report
                    .shed
                    .first()
                    .map(|s| s.reason.clone())
                    .unwrap_or_else(|| "workload not schedulable".to_string());
                AdmissionVerdict::Rejected { reason }
            }
        }
    }

    fn process_departure(&mut self, id: VmId) -> AdmissionVerdict {
        let Some(position) = self.position(id) else {
            self.stats.rejected += 1;
            return AdmissionVerdict::Rejected {
                reason: format!("vm {} not admitted", id.0),
            };
        };
        self.vms.remove(position);
        self.revisions.remove(position);
        self.remove_vcpus_of(id);
        self.stats.departed += 1;
        self.invalidate_memo();
        if self.config.reference {
            // The slow oracle re-proves what the fast path relies on:
            // removal only shrinks per-core demand.
            self.stats.full_verifies += 1;
            let state = SystemAllocation::new(self.vcpus.clone(), self.cores.clone());
            if let Err(e) = state.verify(&self.platform) {
                panic!("reference engine: departure of vm {} broke the state: {e}", id.0);
            }
        }
        AdmissionVerdict::Departed
    }

    fn process_mode_change(&mut self, vm: VmSpec) -> AdmissionVerdict {
        let Some(position) = self.position(vm.id()) else {
            self.stats.rejected += 1;
            return AdmissionVerdict::Rejected {
                reason: format!("vm {} not admitted", vm.id().0),
            };
        };
        let snapshot = self.snapshot();
        let revision = self.revisions[position] + 1;
        let id = vm.id();
        self.vms.remove(position);
        self.revisions.remove(position);
        self.remove_vcpus_of(id);
        match self.admit_vm(vm, revision, None) {
            AdmissionVerdict::Admitted { path } => AdmissionVerdict::Admitted { path },
            AdmissionVerdict::Rejected { reason } => {
                // The new mode does not fit: roll back — the VM keeps
                // running its previous mode, degraded.
                self.restore(snapshot);
                // admit_vm already counted a rejection; reclassify.
                self.stats.rejected -= 1;
                self.stats.degraded += 1;
                AdmissionVerdict::Degraded { reason }
            }
            other => other,
        }
    }

    /// Removes every VCPU of `id` in place: compact the VCPU list,
    /// remap core index lists, drop emptied cores.
    fn remove_vcpus_of(&mut self, id: VmId) {
        let mut remap = vec![usize::MAX; self.vcpus.len()];
        let mut kept: Vec<VcpuSpec> = Vec::with_capacity(self.vcpus.len());
        for (i, vcpu) in self.vcpus.drain(..).enumerate() {
            if vcpu.vm() == id {
                continue;
            }
            remap[i] = kept.len();
            kept.push(vcpu);
        }
        self.vcpus = kept;
        for core in &mut self.cores {
            core.vcpus.retain(|&i| remap[i] != usize::MAX);
            for index in &mut core.vcpus {
                *index = remap[*index];
            }
        }
        self.cores.retain(|core| !core.vcpus.is_empty());
    }

    /// Verifies the current state: structure in full plus the `dirty`
    /// cores' schedulability (everything, in reference mode).
    fn verify_state(&mut self, dirty: &DirtyCores) -> Result<(), AllocError> {
        if self.injected_verify_faults > 0 {
            self.injected_verify_faults -= 1;
            return Err(AllocError::InvalidAllocation {
                detail: "injected verify fault".to_string(),
            });
        }
        let state = SystemAllocation::new(
            std::mem::take(&mut self.vcpus),
            std::mem::take(&mut self.cores),
        );
        let result = if self.config.reference {
            self.stats.full_verifies += 1;
            state.verify(&self.platform)
        } else {
            self.stats.dirty_cores_verified += dirty.len() as u64;
            state.verify_cores(&self.platform, dirty)
        };
        self.vcpus = state.vcpus;
        self.cores = state.cores;
        result
    }

    /// The per-VM parameter stream seed: a pure function of the engine
    /// seed, the [`VmId`], and the VM's mode revision — so an arrival's
    /// VCPU parameters do not depend on what else is in the system,
    /// and the reference replay derives the identical stream.
    fn vm_stream_seed(&self, id: VmId, revision: u64) -> u64 {
        let mut expander =
            SplitMix64::new(self.config.seed ^ (id.0 as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let mut seed = expander.next_u64();
        for _ in 0..revision {
            seed = expander.next_u64();
        }
        seed
    }

    /// Warm-start placement of one VM into the current allocation.
    /// Returns the dirty set on success; on failure the caller
    /// restores the saved state.
    fn place_incremental(&mut self, vm: &VmSpec, revision: u64) -> Option<DirtyCores> {
        let mut rng = DetRng::seed_from_u64(self.vm_stream_seed(vm.id(), revision));
        let produced = self
            .config
            .solution
            .vm_level_with_cache(std::slice::from_ref(vm), &self.platform, &self.cache, &mut rng)
            .ok()?;
        // Renumber onto the engine's monotone VCPU id counter so ids
        // stay unique across the whole stream.
        let base = self.vcpus.len();
        let count = produced.len();
        for (j, spec) in produced.into_iter().enumerate() {
            let renumbered = VcpuSpec::new(
                VcpuId(self.next_vcpu_id + j),
                spec.vm(),
                spec.period(),
                spec.budget_surface().clone(),
                spec.tasks().to_vec(),
            )
            .expect("renumbering preserves validity");
            self.vcpus.push(renumbered);
        }
        // Place heaviest first (stable on ties) — the classic
        // decreasing-first-fit discipline.
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_by(|&a, &b| {
            self.vcpus[base + b]
                .reference_utilization()
                .partial_cmp(&self.vcpus[base + a].reference_utilization())
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut dirty = DirtyCores::new();
        for &j in &order {
            let index = base + j;
            if !self.place_one(index, &mut dirty) {
                return None;
            }
        }
        self.next_vcpu_id += count;
        Some(dirty)
    }

    /// Places one VCPU: first fit as-is, then first fit with spare-pool
    /// partition upgrades, then a newly opened core.
    fn place_one(&mut self, index: usize, dirty: &mut DirtyCores) -> bool {
        // Pass 1: the VCPU fits some core under its current partitions.
        for k in 0..self.cores.len() {
            if self.core_accepts(k, index, self.cores[k].alloc) {
                self.cores[k].vcpus.push(index);
                dirty.mark(k);
                return true;
            }
        }
        // Pass 2: grant spare partitions to a core until it fits.
        for k in 0..self.cores.len() {
            if let Some(upgraded) = self.upgraded_alloc_for(k, index) {
                self.stats.core_upgrades +=
                    u64::from(upgraded.cache - self.cores[k].alloc.cache)
                        + u64::from(upgraded.bandwidth - self.cores[k].alloc.bandwidth);
                self.cores[k].alloc = upgraded;
                self.cores[k].vcpus.push(index);
                dirty.mark(k);
                return true;
            }
        }
        // Pass 3: open a new core funded from the spare pool.
        let space = self.platform.resources();
        let Ok((spare_cache, spare_bw)) = self.spare_pool() else {
            return false;
        };
        if self.cores.len() < self.platform.max_usable_cores()
            && spare_cache >= space.cache_min()
            && spare_bw >= space.bw_min()
        {
            self.cores.push(CoreAssignment {
                vcpus: Vec::new(),
                alloc: space.minimum(),
            });
            let k = self.cores.len() - 1;
            if let Some(alloc) = self.upgraded_alloc_for_or_current(k, index) {
                self.stats.core_upgrades += u64::from(alloc.cache - space.minimum().cache)
                    + u64::from(alloc.bandwidth - space.minimum().bandwidth);
                self.cores[k].alloc = alloc;
                self.cores[k].vcpus.push(index);
                self.stats.cores_opened += 1;
                dirty.mark(k);
                return true;
            }
            self.cores.pop();
        }
        false
    }

    /// Unallocated partitions: the platform totals minus what the
    /// current cores hold.
    ///
    /// The sums exceeding the platform totals would mean the engine
    /// published an over-subscribed core allocation — an invariant
    /// breach, not a full pool. A `saturating_sub` here would silently
    /// mask that as "zero spare"; instead the invariant is asserted
    /// (debug) and surfaced as a typed error (release), which the
    /// placement paths treat as "cannot place" so the repack rebuilds
    /// a verified state from scratch.
    fn spare_pool(&self) -> Result<(u32, u32), AllocError> {
        let space = self.platform.resources();
        let cache: u32 = self.cores.iter().map(|c| c.alloc.cache).sum();
        let bw: u32 = self.cores.iter().map(|c| c.alloc.bandwidth).sum();
        match (
            space.cache_max().checked_sub(cache),
            space.bw_max().checked_sub(bw),
        ) {
            (Some(spare_cache), Some(spare_bw)) => Ok((spare_cache, spare_bw)),
            _ => {
                debug_assert!(
                    false,
                    "core allocation oversubscribed: cache {cache}/{}, bandwidth {bw}/{}",
                    space.cache_max(),
                    space.bw_max(),
                );
                Err(AllocError::CoreOversubscription {
                    cache_allocated: cache,
                    cache_total: space.cache_max(),
                    bw_allocated: bw,
                    bw_total: space.bw_max(),
                })
            }
        }
    }

    /// Whether core `k` stays schedulable with `extra` added under
    /// `alloc`.
    fn core_accepts(&self, k: usize, extra: usize, alloc: Alloc) -> bool {
        let members = self.cores[k]
            .vcpus
            .iter()
            .map(|&i| &self.vcpus[i])
            .chain(std::iter::once(&self.vcpus[extra]));
        core_check::core_schedulable(members, alloc)
    }

    /// Core `k`'s utilization with `extra` added under `alloc`.
    fn core_load(&self, k: usize, extra: usize, alloc: Alloc) -> f64 {
        let members = self.cores[k]
            .vcpus
            .iter()
            .map(|&i| &self.vcpus[i])
            .chain(std::iter::once(&self.vcpus[extra]));
        core_check::core_utilization(members, alloc)
    }

    /// Searches a strictly-upgraded allocation for core `k` that
    /// accepts `extra`, granting one spare partition at a time in the
    /// direction of the larger utilization reduction (cache on ties,
    /// phase-2 style). `None` when the core cannot accept it.
    fn upgraded_alloc_for(&self, k: usize, extra: usize) -> Option<Alloc> {
        let alloc = self.grow_until_accepted(k, extra)?;
        if alloc == self.cores[k].alloc {
            // Pass 1 already rejected the current allocation; "found
            // it without growing" cannot happen, but be explicit.
            return None;
        }
        Some(alloc)
    }

    /// Like [`Self::upgraded_alloc_for`], but also accepts the current
    /// allocation (used for a just-opened core at the space minimum).
    fn upgraded_alloc_for_or_current(&self, k: usize, extra: usize) -> Option<Alloc> {
        self.grow_until_accepted(k, extra)
    }

    /// Grows core `k`'s allocation one spare partition at a time until
    /// it accepts `extra` (or the spare pool is exhausted).
    ///
    /// The step direction is the larger single-step utilization
    /// reduction (cache on ties, phase-2 style). WCET surfaces are
    /// step functions, so they have interior *plateaus*: regions where
    /// one more partition changes nothing but two or three more cross
    /// a cliff. On a plateau (no single step has positive gain) the
    /// historical code gave up and fell through to the ~5.6×-cost full
    /// repack even though spare remained. Instead, a jump-to-max probe
    /// first decides whether any grant within the remaining spare can
    /// accept at all — WCETs are monotone non-increasing in both
    /// resources, so if the maximal grant fails, every grant fails —
    /// and only then does the walk take bounded zero-gain steps across
    /// the plateau, steering by the axis whose full remaining headroom
    /// reduces utilization more (cache on ties).
    fn grow_until_accepted(&self, k: usize, extra: usize) -> Option<Alloc> {
        let space = self.platform.resources();
        let (base_cache, base_bw) = self.spare_pool().ok()?;
        let committed = self.cores[k].alloc;
        let mut alloc = committed;
        loop {
            if self.core_accepts(k, extra, alloc) {
                return Some(alloc);
            }
            let spare_cache = base_cache.saturating_sub(alloc.cache - committed.cache);
            let spare_bw = base_bw.saturating_sub(alloc.bandwidth - committed.bandwidth);
            let can_cache = spare_cache > 0 && alloc.cache < space.cache_max();
            let can_bw = spare_bw > 0 && alloc.bandwidth < space.bw_max();
            if !can_cache && !can_bw {
                return None;
            }
            let current = self.core_load(k, extra, alloc);
            let cache_step = Alloc::new(alloc.cache + 1, alloc.bandwidth);
            let bw_step = Alloc::new(alloc.cache, alloc.bandwidth + 1);
            let cache_gain = if can_cache {
                current - self.core_load(k, extra, cache_step)
            } else {
                f64::NEG_INFINITY
            };
            let bw_gain = if can_bw {
                current - self.core_load(k, extra, bw_step)
            } else {
                f64::NEG_INFINITY
            };
            if cache_gain > 0.0 || bw_gain > 0.0 {
                // Strict > keeps the cache-first tie-break.
                alloc = if bw_gain > cache_gain { bw_step } else { cache_step };
                continue;
            }
            // Zero-gain plateau. Probe the maximal grant: if even all
            // the remaining spare cannot make the core accept, no
            // smaller grant can (monotonicity) — stop here instead of
            // wasting steps.
            let max_alloc = Alloc::new(
                (alloc.cache + spare_cache).min(space.cache_max()),
                (alloc.bandwidth + spare_bw).min(space.bw_max()),
            );
            if !self.core_accepts(k, extra, max_alloc) {
                return None;
            }
            // Some grant within reach accepts: cross the plateau with
            // bounded zero-gain steps, steering toward the axis whose
            // full remaining headroom reduces utilization more.
            let cache_axis_gain = if can_cache {
                current
                    - self.core_load(
                        k,
                        extra,
                        Alloc::new(max_alloc.cache, alloc.bandwidth),
                    )
            } else {
                f64::NEG_INFINITY
            };
            let bw_axis_gain = if can_bw {
                current
                    - self.core_load(
                        k,
                        extra,
                        Alloc::new(alloc.cache, max_alloc.bandwidth),
                    )
            } else {
                f64::NEG_INFINITY
            };
            alloc = if bw_axis_gain > cache_axis_gain || !can_cache {
                bw_step
            } else {
                cache_step
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Task, TaskId, TaskSet, WcetSurface};

    fn vm(id: usize, wcet_ms: f64, n: usize) -> VmSpec {
        let space = Platform::platform_a().resources();
        let tasks: TaskSet = (0..n)
            .map(|i| {
                Task::new(
                    TaskId(id * 1000 + i),
                    10.0,
                    WcetSurface::flat(&space, wcet_ms).unwrap(),
                )
                .unwrap()
            })
            .collect();
        VmSpec::new(VmId(id), tasks).unwrap()
    }

    fn engine() -> AdmissionEngine {
        AdmissionEngine::new(Platform::platform_a(), AdmissionConfig::new(42))
    }

    #[test]
    fn arrival_departure_roundtrip() {
        let mut e = engine();
        let d = e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2))).clone();
        assert!(matches!(d.verdict, AdmissionVerdict::Admitted { .. }));
        assert_eq!(d.vms, 1);
        e.allocation().verify(e.platform()).unwrap();
        let d = e.submit(AdmissionRequest::Departure(VmId(1))).clone();
        assert_eq!(d.verdict, AdmissionVerdict::Departed);
        assert_eq!(d.vms, 0);
        assert_eq!(d.cores, 0);
        assert_eq!(e.allocation().cores_used(), 0);
    }

    #[test]
    fn duplicate_and_unknown_are_rejected_without_state_change() {
        let mut e = engine();
        e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let before = e.allocation();
        let d = e.submit(AdmissionRequest::Arrival(vm(1, 1.0, 1))).clone();
        assert!(matches!(d.verdict, AdmissionVerdict::Rejected { .. }));
        let d = e.submit(AdmissionRequest::Departure(VmId(9))).clone();
        assert!(matches!(d.verdict, AdmissionVerdict::Rejected { .. }));
        assert_eq!(e.allocation(), before);
    }

    #[test]
    fn overload_is_rejected_and_incumbents_survive() {
        let mut e = engine();
        e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        // Demand far beyond 4 cores.
        let d = e.submit(AdmissionRequest::Arrival(vm(2, 9.0, 10))).clone();
        assert!(matches!(d.verdict, AdmissionVerdict::Rejected { .. }));
        assert_eq!(e.working_set().len(), 1);
        assert_eq!(e.working_set()[0].id(), VmId(1));
        e.allocation().verify(e.platform()).unwrap();
    }

    #[test]
    fn mode_change_failure_keeps_previous_mode() {
        let mut e = engine();
        e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let before = e.allocation();
        let d = e.submit(AdmissionRequest::ModeChange(vm(1, 9.0, 10))).clone();
        assert!(matches!(d.verdict, AdmissionVerdict::Degraded { .. }));
        assert_eq!(e.allocation(), before);
        // A feasible mode change applies.
        let d = e.submit(AdmissionRequest::ModeChange(vm(1, 1.0, 3))).clone();
        assert!(matches!(d.verdict, AdmissionVerdict::Admitted { .. }));
        assert_eq!(e.working_set().len(), 1);
        assert_eq!(e.working_set()[0].tasks().len(), 3);
        e.allocation().verify(e.platform()).unwrap();
    }

    #[test]
    fn decision_log_is_replay_deterministic() {
        let run = || {
            let mut e = engine();
            e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
            e.submit(AdmissionRequest::Arrival(vm(2, 3.0, 3)));
            e.submit(AdmissionRequest::Departure(VmId(1)));
            e.submit(AdmissionRequest::ModeChange(vm(2, 1.0, 1)));
            e.log_text()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.lines().count(), 4);
        assert!(a.starts_with("#00000 arrive vm=1"));
    }

    #[test]
    fn batch_outcome_is_order_independent() {
        let vms = [vm(1, 2.0, 2), vm(2, 3.0, 2), vm(3, 1.0, 1)];
        let mut forward = engine();
        forward.submit_batch(vms.iter().cloned().map(AdmissionRequest::Arrival).collect());
        let mut backward = engine();
        backward.submit_batch(
            vms.iter().rev().cloned().map(AdmissionRequest::Arrival).collect(),
        );
        assert_eq!(forward.decisions(), backward.decisions());
        assert_eq!(forward.allocation(), backward.allocation());
        forward.allocation().verify(forward.platform()).unwrap();
    }

    #[test]
    fn reference_mode_matches_fast_mode() {
        let requests = vec![
            AdmissionRequest::Arrival(vm(1, 2.0, 2)),
            AdmissionRequest::Arrival(vm(2, 3.0, 3)),
            AdmissionRequest::ModeChange(vm(1, 4.0, 2)),
            AdmissionRequest::Departure(VmId(2)),
            AdmissionRequest::Arrival(vm(3, 2.0, 4)),
        ];
        let mut fast = engine();
        let mut slow = AdmissionEngine::new(
            Platform::platform_a(),
            AdmissionConfig::new(42).reference_mode(),
        );
        for request in &requests {
            fast.submit(request.clone());
            slow.submit(request.clone());
        }
        assert_eq!(fast.log_text(), slow.log_text());
        assert_eq!(fast.allocation(), slow.allocation());
    }

    #[test]
    fn metrics_families_are_exported() {
        let mut e = engine();
        e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let mut registry = MetricsRegistry::new();
        e.export_metrics(&mut registry);
        assert_eq!(registry.counter("admission.requests"), Some(1));
        assert_eq!(registry.counter("admission.admitted_incremental"), Some(1));
        assert_eq!(registry.gauge("admission.vms"), Some(1.0));
        assert!(registry.counter("admission.cache.lookups").is_some());
    }

    /// A VM whose single task sits on a WCET *plateau*: unschedulable
    /// (utilization 1.1) until the core holds at least `cliff` cache
    /// partitions, then comfortable (0.5). Single-partition steps gain
    /// exactly zero until the cliff.
    fn cliff_vm(id: usize, cliff: u32) -> VmSpec {
        let space = Platform::platform_a().resources();
        let surface = WcetSurface::from_fn(&space, |a| {
            if a.cache >= cliff {
                5.0
            } else {
                11.0
            }
        })
        .unwrap();
        let tasks: TaskSet = std::iter::once(Task::new(TaskId(id * 1000), 10.0, surface).unwrap())
            .collect();
        VmSpec::new(VmId(id), tasks).unwrap()
    }

    /// Regression for the warm-start zero-gain dead-end: the historical
    /// `grow_until_accepted` returned `None` on the first zero-gain
    /// step, so a plateau VM fell through to the full repack even
    /// though growing the core further would accept it. The rewritten
    /// walk probes the maximal grant and crosses the plateau, so this
    /// admission must take the incremental path — with the
    /// accepted/rejected log identical to the reference oracle's.
    #[test]
    fn plateau_vm_places_incrementally_instead_of_repacking() {
        let run = |config: AdmissionConfig| {
            let mut e = AdmissionEngine::new(Platform::platform_a(), config);
            e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 1)));
            e.submit(AdmissionRequest::Arrival(cliff_vm(2, 10)));
            e
        };
        let e = run(AdmissionConfig::new(42));
        assert!(matches!(
            e.decisions()[1].verdict,
            AdmissionVerdict::Admitted { .. }
        ));
        assert_eq!(
            e.stats().admitted_incremental,
            2,
            "plateau VM must place incrementally, not via repack:\n{}",
            e.log_text()
        );
        assert_eq!(e.stats().admitted_repack, 0);
        e.allocation().verify(e.platform()).unwrap();
        // The decision log (verdicts included) matches the oracle.
        let reference = run(AdmissionConfig::new(42).reference_mode());
        assert_eq!(e.log_text(), reference.log_text());
    }

    fn oversubscribe(e: &mut AdmissionEngine) {
        let space = e.platform.resources();
        e.cores.push(CoreAssignment {
            vcpus: Vec::new(),
            alloc: Alloc::new(space.cache_max(), space.bw_max()),
        });
        e.cores.push(CoreAssignment {
            vcpus: Vec::new(),
            alloc: Alloc::new(1, 1),
        });
    }

    /// `spare_pool` used to `saturating_sub` the granted partitions
    /// from the platform totals, silently reporting an oversubscribed
    /// state as "zero spare". It is an invariant breach and must be
    /// loud: a debug assertion in debug builds…
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn spare_pool_panics_on_oversubscription_in_debug() {
        let mut e = engine();
        oversubscribe(&mut e);
        let _ = e.spare_pool();
    }

    /// …and a typed error in release builds.
    #[cfg(not(debug_assertions))]
    #[test]
    fn spare_pool_errors_on_oversubscription_in_release() {
        let mut e = engine();
        oversubscribe(&mut e);
        let space = e.platform.resources();
        match e.spare_pool() {
            Err(AllocError::CoreOversubscription {
                cache_allocated,
                cache_total,
                bw_allocated,
                bw_total,
            }) => {
                assert_eq!(cache_allocated, space.cache_max() + 1);
                assert_eq!(cache_total, space.cache_max());
                assert_eq!(bw_allocated, space.bw_max() + 1);
                assert_eq!(bw_total, space.bw_max());
            }
            other => panic!("expected CoreOversubscription, got {other:?}"),
        }
    }

    /// A VM that passes the capacity pre-filter but cannot be packed
    /// next to `vm(1, 2.0, 2)`: four 0.9-utilization tasks need four
    /// dedicated cores, leaving nowhere for the incumbent's load.
    fn unpackable_vm(id: usize) -> VmSpec {
        vm(id, 9.0, 4)
    }

    #[test]
    fn memo_skips_repeated_rejection_and_invalidates_on_departure() {
        let mut e = engine();
        e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
        let first = e
            .submit(AdmissionRequest::Arrival(unpackable_vm(2)))
            .clone();
        let AdmissionVerdict::Rejected { reason } = &first.verdict else {
            panic!("expected a solver rejection, got {:?}", first.verdict);
        };
        assert!(reason.contains("not schedulable"), "{reason}");
        assert_eq!(e.stats().memo_inserts, 1);
        assert_eq!(e.stats().memo_hits, 0);
        // Identical retry against identical state: served from the
        // memo, byte-identical verdict.
        let retry = e
            .submit(AdmissionRequest::Arrival(unpackable_vm(2)))
            .clone();
        assert_eq!(retry.verdict, first.verdict);
        assert_eq!(e.stats().memo_hits, 1);
        // Any capacity change invalidates: after the departure the
        // retry must consult the solver again (and now succeeds).
        e.submit(AdmissionRequest::Departure(VmId(1)));
        assert!(e.stats().memo_invalidations >= 1);
        let after = e
            .submit(AdmissionRequest::Arrival(unpackable_vm(2)))
            .clone();
        assert_eq!(e.stats().memo_hits, 1, "stale memo entry must not hit");
        assert!(matches!(after.verdict, AdmissionVerdict::Admitted { .. }));
        e.allocation().verify(e.platform()).unwrap();
    }

    #[test]
    fn memo_on_and_memo_off_logs_are_identical() {
        let run = |config: AdmissionConfig| {
            let mut e = AdmissionEngine::new(Platform::platform_a(), config);
            e.submit(AdmissionRequest::Arrival(vm(1, 2.0, 2)));
            for _ in 0..3 {
                e.submit(AdmissionRequest::Arrival(unpackable_vm(2)));
            }
            e.submit(AdmissionRequest::Departure(VmId(1)));
            e.submit(AdmissionRequest::Arrival(unpackable_vm(2)));
            e
        };
        let on = run(AdmissionConfig::new(42));
        let off = run(AdmissionConfig::new(42).without_memo());
        assert!(on.stats().memo_hits >= 2, "memo was never exercised");
        assert_eq!(off.stats().memo_hits, 0);
        assert_eq!(on.log_text(), off.log_text());
        assert_eq!(on.allocation(), off.allocation());
    }
}
