//! Journaled admission recovery: a write-ahead decision journal from
//! which a replacement [`AdmissionEngine`] is reconstructed
//! **bit-identically**.
//!
//! # Why replay works
//!
//! The engine's state is a pure function of its request sequence: a
//! VM's VCPU parameters are derived from `(engine seed, VmId, mode
//! revision)` alone, placement is deterministic, and no decision
//! depends on wall-clock time or external state. Re-submitting the
//! journaled requests to a fresh engine with the same configuration
//! therefore reproduces the crashed engine's state *exactly* — and
//! because each regenerated decision is compared byte-for-byte against
//! the journaled line, corruption or configuration drift that perturbs
//! any decision byte is caught as a typed
//! [`RecoveryError::Divergence`] instead of being absorbed. A
//! recovered engine's *subsequent* decision log is then byte-identical
//! to an engine that never crashed, which the differential conformance
//! suite pins at every journal prefix.
//!
//! # Journal format (`vc2m-admission-journal-v1`)
//!
//! One record per decision, append-only (a record is a pure byte
//! append — nothing earlier in the file is ever rewritten, so a
//! producer issues one buffered, fsync-free append per decision):
//!
//! ```text
//! # vc2m-admission-journal-v1
//! arrive 1 0.180 9054 => #00000 arrive vm=1 u=0.180000 -> admitted/incremental | ...
//! batch 2
//! arrive 2 0.120 53
//! arrive 3 0.305 99
//! => #00001 arrive vm=3 u=0.305000 -> ...
//! => #00002 arrive vm=2 u=0.120000 -> ...
//! ```
//!
//! A single record is `<request line> => <decision line>`. A batch
//! record keeps the batch grouping (batch admission is
//! order-canonicalized and counted differently from singles, so the
//! grouping is part of the state): a `batch n` header, the `n` member
//! request lines in submission order, then the `n` decision lines in
//! the engine's canonical emission order, each prefixed `=> `.
//!
//! The request half of every record is format-agnostic to this module:
//! callers supply the line when appending and a materializer closure
//! when recovering, so the journal works for any request encoding with
//! a stable one-line form (the trace model's `TraceRequest::render`
//! in practice).

use crate::admission::{AdmissionConfig, AdmissionEngine, AdmissionRequest};
use std::error::Error;
use std::fmt;
use vc2m_model::Platform;

/// The first line every rendered journal carries.
pub const JOURNAL_HEADER: &str = "# vc2m-admission-journal-v1";

/// The request/decision separator of a single record. Request lines
/// never contain it, so parsing splits on the first occurrence.
const SEPARATOR: &str = " => ";

/// One journaled decision record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// One request submitted on its own.
    Single {
        /// The request's stable one-line text form.
        request: String,
        /// The decision's `log_line()` bytes.
        decision: String,
    },
    /// A concurrent-arrival batch submitted in one pass.
    Batch {
        /// Member request lines, in submission order.
        requests: Vec<String>,
        /// Decision lines, in the engine's canonical emission order.
        decisions: Vec<String>,
    },
}

impl JournalRecord {
    /// Number of decisions the record carries.
    pub fn decisions(&self) -> usize {
        match self {
            JournalRecord::Single { .. } => 1,
            JournalRecord::Batch { decisions, .. } => decisions.len(),
        }
    }
}

/// The write-ahead decision journal (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionJournal {
    records: Vec<JournalRecord>,
}

impl DecisionJournal {
    /// An empty journal.
    pub fn new() -> Self {
        DecisionJournal::default()
    }

    /// The journaled records, in decision order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of records (a batch is one record).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of journaled decisions (batch members count
    /// individually).
    pub fn decisions(&self) -> usize {
        self.records.iter().map(JournalRecord::decisions).sum()
    }

    /// Appends a single-request record.
    pub fn append_single(&mut self, request: String, decision: String) {
        self.records.push(JournalRecord::Single { request, decision });
    }

    /// Appends a batch record.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one decision was journaled per member
    /// request — a batch always decides each member.
    pub fn append_batch(&mut self, requests: Vec<String>, decisions: Vec<String>) {
        assert_eq!(
            requests.len(),
            decisions.len(),
            "a batch decides each member exactly once"
        );
        self.records.push(JournalRecord::Batch { requests, decisions });
    }

    /// The journal truncated to its first `records` records — a crash
    /// point for the conformance suite.
    pub fn prefix(&self, records: usize) -> DecisionJournal {
        DecisionJournal {
            records: self.records[..records.min(self.records.len())].to_vec(),
        }
    }

    /// Renders the stable text form (header + records,
    /// newline-terminated). [`parse`](DecisionJournal::parse) of the
    /// result reproduces `self`.
    pub fn render(&self) -> String {
        let mut text = String::from(JOURNAL_HEADER);
        text.push('\n');
        for record in &self.records {
            match record {
                JournalRecord::Single { request, decision } => {
                    text.push_str(request);
                    text.push_str(SEPARATOR);
                    text.push_str(decision);
                    text.push('\n');
                }
                JournalRecord::Batch { requests, decisions } => {
                    text.push_str(&format!("batch {}\n", requests.len()));
                    for request in requests {
                        text.push_str(request);
                        text.push('\n');
                    }
                    for decision in decisions {
                        text.push_str("=> ");
                        text.push_str(decision);
                        text.push('\n');
                    }
                }
            }
        }
        text
    }

    /// Parses the text form. Comment (`#`) and blank lines are
    /// ignored; a `batch n` header consumes the next `n` member
    /// request lines and then `n` `=> `-prefixed decision lines.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut records = Vec::new();
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        while let Some((number, line)) = lines.next() {
            if let Some(arity) = line.strip_prefix("batch ") {
                let arity: usize = arity
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {number}: malformed batch arity"))?;
                let mut requests = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let (member_number, member) = lines
                        .next()
                        .ok_or_else(|| format!("line {number}: batch truncated"))?;
                    if member.starts_with("=> ") {
                        return Err(format!(
                            "line {member_number}: decision line where a batch member request \
                             was expected"
                        ));
                    }
                    requests.push(member.to_string());
                }
                let mut decisions = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let (member_number, member) = lines
                        .next()
                        .ok_or_else(|| format!("line {number}: batch truncated"))?;
                    let decision = member.strip_prefix("=> ").ok_or_else(|| {
                        format!("line {member_number}: batch decision line must start with '=> '")
                    })?;
                    decisions.push(decision.to_string());
                }
                records.push(JournalRecord::Batch { requests, decisions });
            } else if let Some((request, decision)) = line.split_once(SEPARATOR) {
                records.push(JournalRecord::Single {
                    request: request.to_string(),
                    decision: decision.to_string(),
                });
            } else {
                return Err(format!("line {number}: record has no '{SEPARATOR}' separator"));
            }
        }
        Ok(DecisionJournal { records })
    }
}

/// Why a journal could not be replayed into a fresh engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A journaled request line failed to materialize.
    BadRequest {
        /// Zero-based record index.
        record: usize,
        /// The materializer's message.
        detail: String,
    },
    /// The reconstructed engine's decision diverged from the journaled
    /// line — the journal was produced under a different configuration
    /// (or was corrupted), so the recovered state cannot be trusted.
    Divergence {
        /// Zero-based record index.
        record: usize,
        /// The decision line the journal holds.
        journaled: String,
        /// The decision line the fresh engine produced.
        replayed: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadRequest { record, detail } => {
                write!(f, "journal record {record}: bad request: {detail}")
            }
            RecoveryError::Divergence {
                record,
                journaled,
                replayed,
            } => write!(
                f,
                "journal record {record}: replay diverged\n  journaled: {journaled}\n  \
                 replayed:  {replayed}"
            ),
        }
    }
}

impl Error for RecoveryError {}

/// Reconstructs a replacement engine from `journal`: replays every
/// journaled request (materialized from its text line by
/// `materialize`) into a fresh engine with `config`, comparing each
/// regenerated decision line byte-for-byte against the journaled one.
///
/// On success the returned engine is in the exact state of the engine
/// that wrote the journal — same working set, allocation, decision
/// log, statistics, and memo — so its subsequent decisions are
/// byte-identical to an engine that never crashed (see the
/// [module docs](self) for the argument, and the conformance suite
/// for the pin).
pub fn recover_engine<F>(
    platform: Platform,
    config: AdmissionConfig,
    journal: &DecisionJournal,
    mut materialize: F,
) -> Result<AdmissionEngine, RecoveryError>
where
    F: FnMut(&str) -> Result<AdmissionRequest, String>,
{
    let mut engine = AdmissionEngine::new(platform, config);
    for (record, entry) in journal.records().iter().enumerate() {
        match entry {
            JournalRecord::Single { request, decision } => {
                let materialized =
                    materialize(request).map_err(|detail| RecoveryError::BadRequest {
                        record,
                        detail,
                    })?;
                let replayed = engine.submit(materialized).log_line();
                if &replayed != decision {
                    return Err(RecoveryError::Divergence {
                        record,
                        journaled: decision.clone(),
                        replayed,
                    });
                }
            }
            JournalRecord::Batch { requests, decisions } => {
                let mut materialized = Vec::with_capacity(requests.len());
                for request in requests {
                    materialized.push(materialize(request).map_err(|detail| {
                        RecoveryError::BadRequest { record, detail }
                    })?);
                }
                let replayed: Vec<String> = engine
                    .submit_batch(materialized)
                    .iter()
                    .map(|d| d.log_line())
                    .collect();
                for (journaled, replayed) in decisions.iter().zip(&replayed) {
                    if journaled != replayed {
                        return Err(RecoveryError::Divergence {
                            record,
                            journaled: journaled.clone(),
                            replayed: replayed.clone(),
                        });
                    }
                }
                if replayed.len() != decisions.len() {
                    return Err(RecoveryError::Divergence {
                        record,
                        journaled: format!("{} decisions", decisions.len()),
                        replayed: format!("{} decisions", replayed.len()),
                    });
                }
            }
        }
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Task, TaskId, TaskSet, VmId, VmSpec, WcetSurface};

    fn vm(id: usize, wcet_ms: f64, n: usize) -> VmSpec {
        let platform = Platform::platform_a();
        let space = platform.resources();
        let tasks: TaskSet = (0..n)
            .map(|i| {
                Task::new(
                    TaskId(id * 1000 + i),
                    10.0,
                    WcetSurface::flat(&space, wcet_ms).unwrap(),
                )
                .unwrap()
            })
            .collect();
        VmSpec::new(VmId(id), tasks).unwrap()
    }

    /// A toy one-line request encoding for these unit tests: `a <id>`
    /// arrives a small VM, `d <id>` departs it. (The production
    /// encoding lives in the trace model; the journal is agnostic.)
    fn materialize(line: &str) -> Result<AdmissionRequest, String> {
        let (kind, id) = line.split_once(' ').ok_or("missing id")?;
        let id: usize = id.parse().map_err(|_| "bad id".to_string())?;
        match kind {
            "a" => Ok(AdmissionRequest::Arrival(vm(id, 1.0, 2))),
            "d" => Ok(AdmissionRequest::Departure(VmId(id))),
            other => Err(format!("unknown kind '{other}'")),
        }
    }

    fn journaled_engine() -> (AdmissionEngine, DecisionJournal) {
        let mut engine = AdmissionEngine::new(Platform::platform_a(), AdmissionConfig::new(42));
        let mut journal = DecisionJournal::new();
        for line in ["a 1", "a 2", "d 1", "a 3"] {
            let decision = engine.submit(materialize(line).unwrap()).log_line();
            journal.append_single(line.to_string(), decision);
        }
        let batch = ["a 4", "a 5"];
        let decisions = engine
            .submit_batch(batch.iter().map(|l| materialize(l).unwrap()).collect())
            .iter()
            .map(|d| d.log_line())
            .collect();
        journal.append_batch(batch.iter().map(|l| l.to_string()).collect(), decisions);
        (engine, journal)
    }

    #[test]
    fn render_parse_round_trips() {
        let (_, journal) = journaled_engine();
        let text = journal.render();
        assert!(text.starts_with(JOURNAL_HEADER));
        let parsed = DecisionJournal::parse(&text).unwrap();
        assert_eq!(parsed, journal);
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.decisions(), 6);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        let err = DecisionJournal::parse("a 1 no separator").unwrap_err();
        assert!(err.contains("line 1") && err.contains("separator"), "{err}");
        let err = DecisionJournal::parse("batch x").unwrap_err();
        assert!(err.contains("malformed batch arity"), "{err}");
        let err = DecisionJournal::parse("batch 2\na 1").unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        let err = DecisionJournal::parse("batch 1\n=> #00000 oops").unwrap_err();
        assert!(err.contains("member request"), "{err}");
        let err = DecisionJournal::parse("batch 1\na 1\n#comment\nno prefix").unwrap_err();
        assert!(err.contains("must start with '=> '"), "{err}");
    }

    #[test]
    fn recovery_reconstructs_the_exact_engine_state() {
        let (original, journal) = journaled_engine();
        let recovered = recover_engine(
            Platform::platform_a(),
            AdmissionConfig::new(42),
            &journal,
            materialize,
        )
        .unwrap();
        assert_eq!(recovered.log_text(), original.log_text());
        assert_eq!(recovered.stats(), original.stats());
        assert_eq!(recovered.allocation(), original.allocation());
    }

    #[test]
    fn recovery_continues_byte_identically_at_every_prefix() {
        // For every crash point: recover from the journal prefix,
        // replay the remaining requests live, and demand the full log
        // byte-identical to the never-crashed engine's.
        let (original, journal) = journaled_engine();
        let tail = ["a 6", "d 2", "a 7"];
        let mut never_crashed = recover_engine(
            Platform::platform_a(),
            AdmissionConfig::new(42),
            &journal,
            materialize,
        )
        .unwrap();
        for line in tail {
            never_crashed.submit(materialize(line).unwrap());
        }
        for crash_point in 0..=journal.len() {
            let mut recovered = recover_engine(
                Platform::platform_a(),
                AdmissionConfig::new(42),
                &journal.prefix(crash_point),
                materialize,
            )
            .unwrap();
            // Re-drive what the prefix missed from the journal's own
            // request lines, then the live tail.
            for record in &journal.records()[crash_point..] {
                match record {
                    JournalRecord::Single { request, .. } => {
                        recovered.submit(materialize(request).unwrap());
                    }
                    JournalRecord::Batch { requests, .. } => {
                        recovered.submit_batch(
                            requests.iter().map(|l| materialize(l).unwrap()).collect(),
                        );
                    }
                }
            }
            for line in tail {
                recovered.submit(materialize(line).unwrap());
            }
            assert_eq!(
                recovered.log_text(),
                never_crashed.log_text(),
                "crash point {crash_point}"
            );
            assert_eq!(recovered.allocation(), never_crashed.allocation());
        }
        assert_eq!(original.decisions().len(), 6);
    }

    #[test]
    fn divergence_is_detected_not_absorbed() {
        let (_, journal) = journaled_engine();
        // Tamper with one decision byte: recovery under the same
        // config must fail loudly.
        let mut text = journal.render();
        text = text.replace("vm=2", "vm=9");
        let tampered = DecisionJournal::parse(&text).unwrap();
        let err = recover_engine(
            Platform::platform_a(),
            AdmissionConfig::new(42),
            &tampered,
            materialize,
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::Divergence { .. }), "{err}");
        let err = recover_engine(
            Platform::platform_a(),
            AdmissionConfig::new(42),
            &DecisionJournal::parse("frob 1 => #00000 x").unwrap(),
            materialize,
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::BadRequest { .. }), "{err}");
        assert!(err.to_string().contains("record 0"), "{err}");
    }
}
