//! Graceful degradation: bounded re-allocation with VM shedding.
//!
//! When a workload fails admission, a robust system does not simply
//! refuse service — it degrades *predictably*: shed the least
//! important work, retry, and report exactly what was sacrificed.
//! [`allocate_with_degradation`] wraps a [`Solution`] in that loop:
//!
//! 1. attempt a full allocation of the working set;
//! 2. on failure (an [`AllocError`] or an unschedulable verdict), shed
//!    the VM with the **highest** reference utilization — so the
//!    lowest-utilization VMs are shed *last* — and retry;
//! 3. stop after [`DegradationPolicy::max_attempts`] attempts or when
//!    the working set is empty.
//!
//! Every accepted allocation is re-checked with
//! [`SystemAllocation::verify`] before being returned: the controller
//! **never** returns an allocation it cannot prove schedulable. The
//! whole loop is deterministic — shedding breaks utilization ties by
//! first position, and the allocator itself is seeded.
//!
//! [`allocate_with_degradation_prioritized`] extends the shed order to
//! mixed-criticality workloads: LO VMs are sacrificed (heaviest first)
//! before any HI VM is touched, per [`Criticality`].

use crate::error::AllocError;
use crate::result::SystemAllocation;
use crate::solution::Solution;
use std::fmt;
use vc2m_analysis::DirtyCores;
use vc2m_model::{Platform, VmId, VmSpec};

/// Criticality level of a VM (H-MBR-style mixed criticality).
///
/// HI VMs keep their guarantees while LO VMs degrade first: both the
/// degradation controller's shed order
/// ([`allocate_with_degradation_prioritized`]) and the fleet's
/// evacuation order are *criticality-major* — every LO VM is
/// sacrificed before the first HI VM is touched, with ties broken by
/// the historical utilization-desc/id-asc rule. The default is LO, so
/// workloads that never mention criticality behave exactly as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Criticality {
    /// Low criticality: shed and evacuated first.
    #[default]
    Lo,
    /// High criticality: protected — shed only when no LO VM remains.
    Hi,
}

impl Criticality {
    /// Stable upper-case name used in logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Criticality::Lo => "LO",
            Criticality::Hi => "HI",
        }
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bounds on the degradation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Maximum number of allocation attempts (including the first).
    /// Each failed attempt sheds one VM, so at most
    /// `max_attempts - 1` VMs are shed.
    pub max_attempts: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy { max_attempts: 8 }
    }
}

impl DegradationPolicy {
    /// A policy with the given attempt bound (at least 1).
    pub fn with_max_attempts(max_attempts: usize) -> Self {
        DegradationPolicy {
            max_attempts: max_attempts.max(1),
        }
    }
}

/// One VM shed by the degradation controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedVm {
    /// The shed VM.
    pub vm: VmId,
    /// Its reference utilization (the shed ordering key within a
    /// criticality class).
    pub utilization: f64,
    /// The shed VM's criticality (the major ordering key: LO sheds
    /// first, HI only when no LO remains).
    pub criticality: Criticality,
    /// The 1-based attempt whose failure caused the shed.
    pub attempt: usize,
    /// Why the attempt failed (allocator error or unschedulable
    /// verdict), for the operator's log.
    pub reason: String,
}

/// What the degradation controller did, structured for reporting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DegradationReport {
    /// Number of allocation attempts made.
    pub attempts: usize,
    /// VMs shed, in shed order (non-increasing utilization).
    pub shed: Vec<ShedVm>,
    /// VMs admitted by the final accepted allocation (empty if none
    /// was accepted).
    pub admitted: Vec<VmId>,
}

impl DegradationReport {
    /// Whether any VM was shed.
    pub fn is_degraded(&self) -> bool {
        !self.shed.is_empty()
    }
}

/// The outcome of [`allocate_with_degradation`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationOutcome {
    /// The accepted (verified schedulable) allocation, if any attempt
    /// succeeded within the policy's bounds.
    pub allocation: Option<SystemAllocation>,
    /// What happened along the way.
    pub report: DegradationReport,
}

impl DegradationOutcome {
    /// Whether an allocation was accepted but some VMs were shed.
    pub fn is_degraded(&self) -> bool {
        self.allocation.is_some() && self.report.is_degraded()
    }
}

/// Allocates `vms` with `solution`, shedding highest-utilization VMs
/// on failure until an allocation is accepted or the policy's attempt
/// bound is hit (see the [module docs](self)).
///
/// The returned allocation, when present, has passed
/// [`SystemAllocation::verify`] against `platform` — including the
/// schedulability of every core — so an accepted solution is never
/// unschedulable.
pub fn allocate_with_degradation(
    solution: Solution,
    vms: &[VmSpec],
    platform: &Platform,
    seed: u64,
    policy: &DegradationPolicy,
) -> DegradationOutcome {
    allocate_with_degradation_prioritized(solution, vms, &[], platform, seed, policy)
}

/// Criticality-aware variant of [`allocate_with_degradation`]:
/// `criticalities` is parallel to `vms` (missing entries default to
/// [`Criticality::Lo`], so the plain entry point is exactly this call
/// with an empty slice). Shedding is *criticality-major*: the highest
/// utilization **LO** VM is shed first (ties by first position), and a
/// HI VM is only ever shed once no LO VM remains in the working set —
/// so HI guarantees survive as long as there is any LO work left to
/// sacrifice.
pub fn allocate_with_degradation_prioritized(
    solution: Solution,
    vms: &[VmSpec],
    criticalities: &[Criticality],
    platform: &Platform,
    seed: u64,
    policy: &DegradationPolicy,
) -> DegradationOutcome {
    let mut working: Vec<VmSpec> = vms.to_vec();
    let mut crits: Vec<Criticality> = (0..vms.len())
        .map(|i| criticalities.get(i).copied().unwrap_or_default())
        .collect();
    let mut report = DegradationReport::default();
    let mut proven = ProvenCores::default();

    while !working.is_empty() && report.attempts < policy.max_attempts {
        report.attempts += 1;
        let failure = match solution.try_allocate(&working, platform, seed) {
            Ok(outcome) => match outcome.into_allocation() {
                Some(allocation) => {
                    // Re-verify before accepting: the controller's
                    // contract is that an accepted allocation is
                    // provably schedulable, so a verdict the verifier
                    // cannot reproduce is treated as a failed attempt.
                    // Retries skip the schedulability re-check for
                    // cores whose exact content was already proven by
                    // an earlier attempt's verification (shedding
                    // typically perturbs only part of the packing);
                    // structural invariants are always checked in
                    // full, and the verdict is pinned bit-identical
                    // to a full verify by the regression suite.
                    match proven.verify(&allocation, platform) {
                        Ok(()) => {
                            report.admitted = working.iter().map(|vm| vm.id()).collect();
                            return DegradationOutcome {
                                allocation: Some(allocation),
                                report,
                            };
                        }
                        Err(e) => format!("verification failed: {e}"),
                    }
                }
                None => "workload not schedulable".to_string(),
            },
            Err(e) => e.to_string(),
        };
        shed_heaviest(&mut working, &mut crits, report.attempts, failure, &mut report.shed);
    }

    DegradationOutcome {
        allocation: None,
        report,
    }
}

/// Schedulability proofs carried across degradation retries: for every
/// allocation an earlier attempt verified, which of its cores passed
/// the per-core EDF test.
///
/// A retry candidate's core is *clean* when it is content-identical
/// ([`SystemAllocation::core_content_eq`]) to a proven core — the core
/// test is a pure function of the core's own VCPU parameters and
/// `Alloc`, so the earlier verdict transfers exactly; everything else
/// is dirty and re-checked. Because clean cores cannot fail, the first
/// failing core (and thus the error text and the shed trace) is
/// bit-identical to what a full verify would produce.
#[derive(Debug, Default)]
struct ProvenCores {
    attempts: Vec<(SystemAllocation, Vec<bool>)>,
}

impl ProvenCores {
    /// Whether `allocation`'s core `k` matches a core already proven
    /// schedulable by an earlier attempt.
    fn is_proven(&self, allocation: &SystemAllocation, k: usize) -> bool {
        self.attempts.iter().any(|(prev, schedulable)| {
            (0..prev.cores_used()).any(|j| schedulable[j] && allocation.core_content_eq(k, prev, j))
        })
    }

    /// Verifies `allocation` — structure in full, schedulability only
    /// for unproven cores — and records the proofs this verification
    /// establishes for later retries.
    fn verify(&mut self, allocation: &SystemAllocation, platform: &Platform) -> Result<(), AllocError> {
        let cores = allocation.cores_used();
        let mut inherited = vec![false; cores];
        let mut dirty = DirtyCores::new();
        for (k, proven) in inherited.iter_mut().enumerate() {
            if self.is_proven(allocation, k) {
                *proven = true;
            } else {
                dirty.mark(k);
            }
        }
        match allocation.verify_cores_detailed(platform, &dirty) {
            Ok(()) => Ok(()),
            Err((failed, e)) => {
                if let Some(f) = failed {
                    // Dirty cores are marked in ascending order, so
                    // every dirty core below the failing index passed
                    // its check — keep those proofs for the retries.
                    let mut schedulable = inherited;
                    for k in dirty.iter().take_while(|&k| k < f) {
                        schedulable[k] = true;
                    }
                    self.attempts.push((allocation.clone(), schedulable));
                }
                Err(e)
            }
        }
    }
}

/// Removes the criticality-major heaviest VM from `working`: the
/// highest-utilization **LO** VM (first position wins ties —
/// deterministic), falling back to the HI VMs only when no LO VM
/// remains. Records the victim in `shed`.
fn shed_heaviest(
    working: &mut Vec<VmSpec>,
    crits: &mut Vec<Criticality>,
    attempt: usize,
    reason: String,
    shed: &mut Vec<ShedVm>,
) {
    let class = if crits.contains(&Criticality::Lo) {
        Criticality::Lo
    } else {
        Criticality::Hi
    };
    let mut heaviest: Option<(usize, f64)> = None;
    for (i, vm) in working.iter().enumerate() {
        if crits[i] != class {
            continue;
        }
        let u = vm.reference_utilization();
        if heaviest.is_none_or(|(_, best)| u > best) {
            heaviest = Some((i, u));
        }
    }
    if let Some((index, utilization)) = heaviest {
        let vm = working.remove(index);
        crits.remove(index);
        shed.push(ShedVm {
            vm: vm.id(),
            utilization,
            criticality: class,
            attempt,
            reason,
        });
    }
}

/// Convenience: the error a caller can surface when degradation ran
/// out of attempts (keeps call sites from inventing ad-hoc strings).
pub fn exhausted_error(report: &DegradationReport) -> AllocError {
    AllocError::InvalidAllocation {
        detail: format!(
            "degradation exhausted after {} attempts ({} VMs shed)",
            report.attempts,
            report.shed.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::{Platform, Task, TaskId, TaskSet, VmId, VmSpec, WcetSurface};

    fn vm(id: usize, task_base: usize, wcet_ms: f64, n: usize) -> VmSpec {
        let platform = Platform::platform_a();
        let space = platform.resources();
        let tasks: TaskSet = (0..n)
            .map(|i| {
                Task::new(
                    TaskId(task_base + i),
                    10.0,
                    WcetSurface::flat(&space, wcet_ms).unwrap(),
                )
                .unwrap()
            })
            .collect();
        VmSpec::new(VmId(id), tasks).unwrap()
    }

    #[test]
    fn light_workload_admits_everything() {
        let platform = Platform::platform_a();
        let vms = vec![vm(0, 0, 1.0, 2), vm(1, 100, 1.0, 2)];
        let outcome = allocate_with_degradation(
            Solution::HeuristicFlattening,
            &vms,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        let allocation = outcome.allocation.clone().expect("light workload admits");
        assert!(allocation.verify(&platform).is_ok());
        assert!(!outcome.is_degraded());
        assert_eq!(outcome.report.attempts, 1);
        assert_eq!(outcome.report.admitted, vec![VmId(0), VmId(1)]);
        assert!(outcome.report.shed.is_empty());
    }

    #[test]
    fn overload_sheds_heaviest_first_and_lightest_last() {
        let platform = Platform::platform_a();
        // Far more demand than 4 cores can serve: per-VM utilizations
        // 8.0, 4.0, 0.4 — the 0.4 VM must survive.
        let vms = vec![vm(0, 0, 8.0, 10), vm(1, 100, 8.0, 5), vm(2, 200, 2.0, 2)];
        let outcome = allocate_with_degradation(
            Solution::HeuristicFlattening,
            &vms,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        let allocation = outcome.allocation.clone().expect("light VM is admittable alone");
        assert!(allocation.verify(&platform).is_ok());
        assert!(outcome.is_degraded());
        // Shed order is non-increasing utilization; the lightest VM is
        // shed last (here: not at all).
        let shed_ids: Vec<VmId> = outcome.report.shed.iter().map(|s| s.vm).collect();
        assert_eq!(shed_ids, vec![VmId(0), VmId(1)]);
        for pair in outcome.report.shed.windows(2) {
            assert!(pair[0].utilization >= pair[1].utilization);
        }
        assert_eq!(outcome.report.admitted, vec![VmId(2)]);
    }

    #[test]
    fn attempt_bound_is_respected() {
        let platform = Platform::platform_a();
        let vms = vec![vm(0, 0, 9.0, 10), vm(1, 100, 9.0, 10), vm(2, 200, 9.0, 10)];
        let policy = DegradationPolicy::with_max_attempts(2);
        let outcome =
            allocate_with_degradation(Solution::HeuristicFlattening, &vms, &platform, 7, &policy);
        assert!(outcome.allocation.is_none());
        assert_eq!(outcome.report.attempts, 2);
        assert_eq!(outcome.report.shed.len(), 2);
        assert!(outcome.report.admitted.is_empty());
        let err = exhausted_error(&outcome.report);
        assert!(err.to_string().contains("2 attempts"));
    }

    #[test]
    fn shedding_everything_reports_no_allocation() {
        let platform = Platform::platform_a();
        // A single VM whose demand (utilization 9.0) exceeds the
        // 4-core platform at any allocation.
        let vms = vec![vm(0, 0, 9.0, 10)];
        let outcome = allocate_with_degradation(
            Solution::HeuristicFlattening,
            &vms,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        assert!(outcome.allocation.is_none());
        assert!(outcome.report.is_degraded());
        assert!(!outcome.is_degraded()); // nothing accepted
        assert_eq!(outcome.report.shed.len(), 1);
        assert_eq!(outcome.report.shed[0].attempt, 1);
    }

    #[test]
    fn proven_cores_skip_is_pinned_to_full_verify() {
        use crate::result::CoreAssignment;
        use vc2m_model::{Alloc, BudgetSurface, VcpuId};

        let platform = Platform::platform_a();
        let space = platform.resources();
        let vcpu = |id: usize, budget: f64| {
            vc2m_model::VcpuSpec::new(
                VcpuId(id),
                VmId(0),
                10.0,
                BudgetSurface::flat(&space, budget).unwrap(),
                vec![TaskId(id)],
            )
            .unwrap()
        };
        let core = |vcpus: Vec<usize>| CoreAssignment {
            vcpus,
            alloc: Alloc::new(10, 10),
        };

        // Attempt 1: core 0 schedulable (u=0.4), core 1 not (u=1.2).
        let a = SystemAllocation::new(
            vec![vcpu(0, 4.0), vcpu(1, 6.0), vcpu(2, 6.0)],
            vec![core(vec![0]), core(vec![1, 2])],
        );
        let mut proven = ProvenCores::default();
        let partial = proven.verify(&a, &platform);
        assert_eq!(partial, a.verify(&platform), "verdicts must match bit-for-bit");
        assert!(partial.unwrap_err().to_string().contains("core 1"));
        // The failure proved core 0; a retry reusing its exact content
        // marks only the changed core dirty.
        assert!(proven.is_proven(&a, 0));
        assert!(!proven.is_proven(&a, 1));

        // Attempt 2: same core-0 content (even under different vcpu
        // numbering), the bad core replaced by a schedulable one.
        let b = SystemAllocation::new(
            vec![vcpu(1, 6.0), vcpu(0, 4.0)],
            vec![core(vec![1]), core(vec![0])],
        );
        assert!(proven.is_proven(&b, 0), "renumbered content still matches");
        assert_eq!(proven.verify(&b, &platform), b.verify(&platform));
        assert!(proven.verify(&b, &platform).is_ok());

        // A retry that reintroduces the unproven core content is still
        // rejected — nothing ever proved it.
        let c = SystemAllocation::new(
            vec![vcpu(0, 4.0), vcpu(1, 6.0), vcpu(2, 6.0)],
            vec![core(vec![0]), core(vec![1, 2])],
        );
        assert_eq!(proven.verify(&c, &platform), c.verify(&platform));
        assert!(proven.verify(&c, &platform).is_err());
    }

    #[test]
    fn criticality_major_shed_protects_hi_until_lo_is_gone() {
        let platform = Platform::platform_a();
        // The HI VM is light (u=0.4) but the LO VMs are the heavies
        // (u=8.0, u=4.0): utilization-only shedding would never touch
        // the HI VM here, so also check the ordering *within* LO.
        let vms = vec![vm(0, 0, 2.0, 2), vm(1, 100, 8.0, 10), vm(2, 200, 8.0, 5)];
        let crits = [Criticality::Hi, Criticality::Lo, Criticality::Lo];
        let outcome = allocate_with_degradation_prioritized(
            Solution::HeuristicFlattening,
            &vms,
            &crits,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        let allocation = outcome.allocation.clone().expect("HI VM is admittable alone");
        assert!(allocation.verify(&platform).is_ok());
        let shed_ids: Vec<VmId> = outcome.report.shed.iter().map(|s| s.vm).collect();
        assert_eq!(shed_ids, vec![VmId(1), VmId(2)]);
        assert!(outcome.report.shed.iter().all(|s| s.criticality == Criticality::Lo));
        for pair in outcome.report.shed.windows(2) {
            assert!(pair[0].utilization >= pair[1].utilization);
        }
        assert_eq!(outcome.report.admitted, vec![VmId(0)]);
    }

    #[test]
    fn hi_is_shed_only_after_every_lo_is_gone() {
        let platform = Platform::platform_a();
        // The HI VM alone exceeds the platform, so even the protected
        // class is eventually shed — but only after every LO VM.
        let vms = vec![vm(0, 0, 9.0, 10), vm(1, 100, 2.0, 2)];
        let crits = [Criticality::Hi, Criticality::Lo];
        let outcome = allocate_with_degradation_prioritized(
            Solution::HeuristicFlattening,
            &vms,
            &crits,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        assert!(outcome.allocation.is_none());
        let order: Vec<Criticality> = outcome.report.shed.iter().map(|s| s.criticality).collect();
        assert_eq!(order, vec![Criticality::Lo, Criticality::Hi]);
        // The invariant proper: once a HI VM has been shed, no LO shed
        // may follow (every LO was already gone).
        let first_hi = order.iter().position(|c| *c == Criticality::Hi);
        if let Some(i) = first_hi {
            assert!(order[i..].iter().all(|c| *c == Criticality::Hi));
        }
    }

    #[test]
    fn plain_entry_point_is_the_all_lo_special_case() {
        let platform = Platform::platform_a();
        let vms = vec![vm(0, 0, 8.0, 10), vm(1, 100, 8.0, 5), vm(2, 200, 2.0, 2)];
        let policy = DegradationPolicy::default();
        let plain =
            allocate_with_degradation(Solution::HeuristicFlattening, &vms, &platform, 7, &policy);
        let all_lo = allocate_with_degradation_prioritized(
            Solution::HeuristicFlattening,
            &vms,
            &[Criticality::Lo; 3],
            &platform,
            7,
            &policy,
        );
        assert_eq!(plain, all_lo);
        assert!(plain.report.shed.iter().all(|s| s.criticality == Criticality::Lo));
    }

    #[test]
    fn deterministic_across_runs() {
        let platform = Platform::platform_a();
        let vms = vec![vm(0, 0, 8.0, 10), vm(1, 100, 8.0, 5), vm(2, 200, 2.0, 2)];
        let a = allocate_with_degradation(
            Solution::HeuristicFlattening,
            &vms,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        let b = allocate_with_degradation(
            Solution::HeuristicFlattening,
            &vms,
            &platform,
            7,
            &DegradationPolicy::default(),
        );
        assert_eq!(a, b);
    }
}
