//! Differential conformance suite for the streaming admission engine.
//!
//! The engine's contract is that its incremental fast path (warm-start
//! placement + dirty-set verification) is *observationally identical*
//! to the slow reference oracle (`AdmissionConfig::reference_mode`),
//! which disables the analysis cache and re-verifies the full system
//! after every request. Two families of tests prove it:
//!
//! - **Prefix replay**: drive the fast engine one request at a time
//!   and, at every trace position, replay the whole prefix into a
//!   fresh reference engine. Decision logs must be bit-identical and
//!   the resulting allocations equal. This is the O(n²) differential
//!   check, so the deterministic stream is kept modest.
//! - **Seeded properties** (via `vc2m_rng::cases::check`): the
//!   allocation verifies after every request, departures never reject
//!   admitted VMs, replay is byte-deterministic, and batch admission
//!   is order-independent under permutation.
//!
//! The request streams are built in-test (this crate cannot see the
//! trace model in `vc2m`), mirroring the core trace materializer:
//! per-VM seeded tasksets with globally unique task ids.

use vc2m_alloc::{
    allocate_with_degradation, AdmissionConfig, AdmissionEngine, AdmissionPath, AdmissionRequest,
    AdmissionVerdict, DegradationPolicy, Solution,
};
use vc2m_model::{Platform, Task, TaskId, TaskSet, VmId, VmSpec};
use vc2m_rng::{cases::check, DetRng, Rng};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

/// Task-id range reserved per VM, mirroring the core trace
/// materializer so ids stay globally unique across mode changes.
const TASK_ID_STRIDE: usize = 100_000;

/// Build one VM with a seeded taskset at (approximately) the given
/// utilization, with task ids disjoint from every other VM's.
fn make_vm(platform: &Platform, id: usize, utilization: f64, seed: u64) -> VmSpec {
    let config = TasksetConfig::new(utilization, UtilizationDist::Uniform);
    let mut generator = TasksetGenerator::new(platform.resources(), config, seed);
    let tasks: TaskSet = generator
        .generate()
        .iter()
        .enumerate()
        .map(|(i, task)| {
            Task::new(
                TaskId(id * TASK_ID_STRIDE + i),
                task.period(),
                task.wcet_surface().clone(),
            )
            .expect("re-identified task keeps its validity")
        })
        .collect();
    VmSpec::new(VmId(id), tasks).expect("generated taskset is non-empty")
}

/// One engine-visible step: a single request or an atomic batch.
enum Step {
    One(AdmissionRequest),
    Batch(Vec<AdmissionRequest>),
}

fn apply(engine: &mut AdmissionEngine, step: &Step) {
    match step {
        Step::One(request) => {
            engine.submit(request.clone());
        }
        Step::Batch(requests) => {
            engine.submit_batch(requests.clone());
        }
    }
}

fn fresh_arrival(
    platform: &Platform,
    rng: &mut DetRng,
    next_vm: &mut usize,
) -> (usize, AdmissionRequest) {
    let id = *next_vm;
    *next_vm += 1;
    let utilization = rng.gen_range(0.06f64..0.28);
    let seed = rng.gen_range(0u64..1_000_000);
    (id, AdmissionRequest::Arrival(make_vm(platform, id, utilization, seed)))
}

/// Generate a mixed request stream: arrivals (single and batched),
/// departures, and mode changes over the locally tracked live set.
/// Departures may target VMs the engine rejected — those produce
/// deterministic "not admitted" rejections, which is part of the
/// surface under test.
fn random_steps(platform: &Platform, rng: &mut DetRng, n: usize) -> Vec<Step> {
    let mut steps = Vec::with_capacity(n);
    let mut live: Vec<usize> = Vec::new();
    let mut next_vm = 1usize;
    for _ in 0..n {
        let roll = rng.gen_range(0.0f64..1.0);
        if !live.is_empty() && roll < 0.25 {
            let index = rng.gen_range(0usize..live.len());
            let id = live.remove(index);
            steps.push(Step::One(AdmissionRequest::Departure(VmId(id))));
        } else if !live.is_empty() && roll < 0.40 {
            let index = rng.gen_range(0usize..live.len());
            let id = live[index];
            let utilization = rng.gen_range(0.06f64..0.28);
            let seed = rng.gen_range(0u64..1_000_000);
            steps.push(Step::One(AdmissionRequest::ModeChange(make_vm(
                platform,
                id,
                utilization,
                seed,
            ))));
        } else if roll < 0.52 {
            let size = rng.gen_range(2usize..4);
            let batch = (0..size)
                .map(|_| {
                    let (id, request) = fresh_arrival(platform, rng, &mut next_vm);
                    live.push(id);
                    request
                })
                .collect();
            steps.push(Step::Batch(batch));
        } else {
            let (id, request) = fresh_arrival(platform, rng, &mut next_vm);
            live.push(id);
            steps.push(Step::One(request));
        }
    }
    steps
}

/// The O(n²) differential check: at every position of a deterministic
/// mixed stream, a from-scratch reference-mode replay of the prefix
/// must produce a bit-identical decision log and an equal allocation.
#[test]
fn fast_engine_matches_reference_replay_at_every_prefix() {
    let platform = Platform::platform_a();
    let mut rng = DetRng::seed_from_u64(7);
    let steps = random_steps(&platform, &mut rng, 28);
    let mut fast = AdmissionEngine::new(platform, AdmissionConfig::new(42));
    for position in 0..steps.len() {
        apply(&mut fast, &steps[position]);
        let mut reference = AdmissionEngine::new(
            platform,
            AdmissionConfig::new(42).reference_mode(),
        );
        for step in &steps[..=position] {
            apply(&mut reference, step);
        }
        assert_eq!(
            fast.log_text(),
            reference.log_text(),
            "decision logs diverged at trace position {position}"
        );
        assert_eq!(
            fast.allocation(),
            reference.allocation(),
            "allocations diverged at trace position {position}"
        );
        if !fast.working_set().is_empty() {
            fast.allocation().verify(fast.platform()).unwrap();
        }
    }
    // The stream must actually exercise the interesting paths, or the
    // differential check proves less than it claims.
    let log = fast.log_text();
    assert!(log.contains("mode vm="), "stream never exercised a mode change");
    assert!(log.contains("-> departed"), "stream never exercised a departure");
    assert!(
        log.contains("admitted/incremental"),
        "stream never exercised the incremental path"
    );
    assert!(
        log.contains("admitted/repack") || log.contains("rejected (workload"),
        "stream never pressured the solver fallback"
    );
}

/// When the engine falls back to a repack, the state it installs must
/// be exactly what a direct `allocate_with_degradation` call over the
/// prior working set plus the newcomer produces (no-shed policy).
#[test]
fn repack_admission_equals_direct_degradation_solve() {
    let platform = Platform::platform_a();
    let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(42));
    let mut saw_repack = false;
    for id in 1..=12usize {
        let vm = make_vm(&platform, id, 0.23, 1000 + id as u64);
        let before: Vec<VmSpec> = engine.working_set().to_vec();
        let decision = engine.submit(AdmissionRequest::Arrival(vm.clone())).clone();
        if decision.verdict
            == (AdmissionVerdict::Admitted {
                path: AdmissionPath::Repack,
            })
        {
            saw_repack = true;
            let mut candidate = before;
            candidate.push(vm);
            let outcome = allocate_with_degradation(
                Solution::Auto,
                &candidate,
                &platform,
                42,
                &DegradationPolicy { max_attempts: 1 },
            );
            let direct = outcome
                .allocation
                .expect("engine admitted via repack, so the direct solve must succeed");
            assert_eq!(
                engine.allocation(),
                direct,
                "repack-installed state differs from the direct degradation solve"
            );
        }
    }
    assert!(saw_repack, "the arrival sequence never forced a repack");
    engine.allocation().verify(engine.platform()).unwrap();
}

/// Safety invariant: after every request the admitted system is
/// schedulable — `verify()` never fails on a non-empty allocation.
#[test]
fn allocation_verifies_after_every_request() {
    check(16, |rng| {
        let platform = Platform::platform_a();
        let steps = random_steps(&platform, rng, 18);
        let seed = rng.gen_range(0u64..10_000);
        let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(seed));
        for step in &steps {
            apply(&mut engine, step);
            if !engine.working_set().is_empty() {
                engine.allocation().verify(engine.platform()).unwrap();
            }
        }
    });
}

/// A departure can only shrink per-core demand, so it must always
/// succeed and must never disturb the remaining admitted VMs.
#[test]
fn departures_never_reject_admitted_vms() {
    check(16, |rng| {
        let platform = Platform::platform_a();
        let steps = random_steps(&platform, rng, 12);
        let seed = rng.gen_range(0u64..10_000);
        let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(seed));
        for step in &steps {
            apply(&mut engine, step);
        }
        // Drain the admitted set in random order; every departure must
        // land and leave the survivors untouched and schedulable.
        while !engine.working_set().is_empty() {
            let ids: Vec<VmId> = engine.working_set().iter().map(|vm| vm.id()).collect();
            let victim = ids[rng.gen_range(0usize..ids.len())];
            let decision = engine.submit(AdmissionRequest::Departure(victim)).clone();
            assert_eq!(decision.verdict, AdmissionVerdict::Departed);
            let survivors: Vec<VmId> = engine.working_set().iter().map(|vm| vm.id()).collect();
            let expected: Vec<VmId> = ids.into_iter().filter(|&id| id != victim).collect();
            assert_eq!(survivors, expected, "departure disturbed the admitted set");
            if !engine.working_set().is_empty() {
                engine.allocation().verify(engine.platform()).unwrap();
            }
        }
    });
}

/// Replaying the same stream against the same seed must reproduce the
/// decision log byte-for-byte and the final allocation exactly.
#[test]
fn replay_is_byte_deterministic() {
    check(8, |rng| {
        let platform = Platform::platform_a();
        let steps = random_steps(&platform, rng, 14);
        let seed = rng.gen_range(0u64..10_000);
        let run = || {
            let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(seed));
            for step in &steps {
                apply(&mut engine, step);
            }
            (engine.log_text(), engine.allocation())
        };
        let (first_log, first_allocation) = run();
        let (second_log, second_allocation) = run();
        assert_eq!(first_log, second_log);
        assert_eq!(first_allocation, second_allocation);
    });
}

/// Batch admission canonicalizes its arrivals, so any permutation of
/// the same batch must yield identical decisions and end state.
#[test]
fn batch_admission_is_order_independent() {
    check(16, |rng| {
        let platform = Platform::platform_a();
        let seed = rng.gen_range(0u64..10_000);
        let size = rng.gen_range(2usize..6);
        let mut next_vm = 1usize;
        let arrivals: Vec<AdmissionRequest> = (0..size)
            .map(|_| fresh_arrival(&platform, rng, &mut next_vm).1)
            .collect();
        let mut shuffled = arrivals.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0usize..i + 1);
            shuffled.swap(i, j);
        }
        let mut forward = AdmissionEngine::new(platform, AdmissionConfig::new(seed));
        forward.submit_batch(arrivals);
        let mut permuted = AdmissionEngine::new(platform, AdmissionConfig::new(seed));
        permuted.submit_batch(shuffled);
        assert_eq!(forward.decisions(), permuted.decisions());
        assert_eq!(forward.allocation(), permuted.allocation());
        if !forward.working_set().is_empty() {
            forward.allocation().verify(forward.platform()).unwrap();
        }
    });
}

/// Step-locked differential property: the fast and reference engines
/// agree on every random stream, not just the pinned one.
#[test]
fn fast_and_reference_agree_on_random_streams() {
    check(8, |rng| {
        let platform = Platform::platform_a();
        let steps = random_steps(&platform, rng, 10);
        let seed = rng.gen_range(0u64..10_000);
        let mut fast = AdmissionEngine::new(platform, AdmissionConfig::new(seed));
        let mut reference = AdmissionEngine::new(
            platform,
            AdmissionConfig::new(seed).reference_mode(),
        );
        for (position, step) in steps.iter().enumerate() {
            apply(&mut fast, step);
            apply(&mut reference, step);
            assert_eq!(
                fast.log_text(),
                reference.log_text(),
                "fast and reference logs diverged at position {position}"
            );
        }
        assert_eq!(fast.allocation(), reference.allocation());
    });
}
