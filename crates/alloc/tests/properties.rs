//! Property-based tests for the allocation algorithms, driven by the
//! in-tree seeded case harness (`vc2m_rng::cases`).

use vc2m_alloc::kmeans::kmeans;
use vc2m_alloc::packing::{best_fit_open, sort_decreasing, worst_fit_fixed, Item};
use vc2m_alloc::Solution;
use vc2m_model::{Platform, TaskSet, VmId, VmSpec};
use vc2m_rng::{cases::check, DetRng, Rng};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

#[test]
fn kmeans_assignment_is_a_partition() {
    check(48, |rng| {
        let n = rng.gen_range(0usize..30);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-10.0f64..10.0)).collect())
            .collect();
        let k = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..100);
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let mut kmeans_rng = DetRng::seed_from_u64(seed);
        let clustering = kmeans(&refs, k, &mut kmeans_rng);
        assert_eq!(clustering.assignment().len(), points.len());
        // Every point in exactly one cluster, clusters within range.
        let members = clustering.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, points.len());
        for &c in clustering.assignment() {
            assert!(c < clustering.k().max(1));
        }
    });
}

#[test]
fn worst_fit_covers_all_items_exactly_once() {
    check(48, |rng| {
        let n = rng.gen_range(0usize..40);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let bins = rng.gen_range(1usize..8);
        let mut items: Vec<Item> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Item::new(i, s))
            .collect();
        sort_decreasing(&mut items);
        let packed = worst_fit_fixed(&items, bins);
        assert_eq!(packed.len(), bins);
        let mut seen: Vec<usize> = packed.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        assert_eq!(seen, expected);
        // Balance property: max and min loads differ by at most the
        // largest item.
        let loads: Vec<f64> = packed
            .iter()
            .map(|bin| bin.iter().map(|&i| sizes[i]).sum())
            .collect();
        if !sizes.is_empty() {
            let max_load = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min_load = loads.iter().cloned().fold(f64::INFINITY, f64::min);
            let biggest = sizes.iter().cloned().fold(0.0, f64::max);
            assert!(max_load - min_load <= biggest + 1e-9);
        }
    });
}

#[test]
fn best_fit_respects_capacity_and_covers_items() {
    check(48, |rng| {
        let n = rng.gen_range(0usize..40);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01f64..0.9)).collect();
        let mut items: Vec<Item> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Item::new(i, s))
            .collect();
        sort_decreasing(&mut items);
        let packed = best_fit_open(&items);
        let mut seen: Vec<usize> = packed.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        assert_eq!(seen, expected);
        for bin in &packed {
            let load: f64 = bin.iter().map(|&i| sizes[i]).sum();
            assert!(load <= 1.0 + 1e-9);
        }
        // First-fit-decreasing-style bound sanity: not absurdly many bins.
        let total: f64 = sizes.iter().sum();
        assert!(packed.len() <= (2.0 * total).ceil() as usize + 1);
    });
}

#[test]
fn every_schedulable_outcome_passes_verification() {
    check(12, |rng| {
        let target = rng.gen_range(0.3f64..1.8);
        let seed = rng.gen_range(0u64..500);
        let platform = Platform::platform_a();
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(target, UtilizationDist::Uniform),
            seed,
        );
        let tasks: TaskSet = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks).unwrap()];
        // The cheap solutions (skip the two existing-CSA ones: their
        // 380-cell budget searches make property testing slow).
        for solution in [
            Solution::HeuristicFlattening,
            Solution::HeuristicOverheadFree,
            Solution::EvenlyPartition,
        ] {
            if let Some(allocation) = solution.allocate(&vms, &platform, seed).into_allocation() {
                assert!(
                    allocation.verify(&platform).is_ok(),
                    "{} produced an invalid allocation",
                    solution
                );
                // Task coverage: every task appears on exactly one VCPU.
                let mut ids: Vec<usize> = allocation
                    .vcpus()
                    .iter()
                    .flat_map(|v| v.tasks().iter().map(|t| t.index()))
                    .collect();
                let n = ids.len();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), n, "{}: task assigned twice", solution);
            }
        }
    });
}

#[test]
fn vc2m_dominates_baseline_statistically() {
    check(12, |rng| {
        // Pointwise on a single taskset the heuristic could be unlucky,
        // but at this light utilization flattening must always succeed,
        // and whenever the baseline succeeds so does flattening.
        let seed = rng.gen_range(0u64..200);
        let platform = Platform::platform_a();
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(0.6, UtilizationDist::Uniform),
            seed,
        );
        let tasks: TaskSet = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks).unwrap()];
        let flattening = Solution::HeuristicFlattening.allocate(&vms, &platform, seed);
        assert!(flattening.is_schedulable(), "flattening failed at u*=0.6");
    });
}

/// A from-first-principles reimplementation of the degradation loop
/// with an unconditional **full** `verify()` on every attempt — the
/// behaviour before the retry path learned to skip schedulability
/// checks for cores proven by earlier attempts. The optimised loop
/// must be outcome-identical to this reference on every seed
/// (allocation, report, shed trace, and reason strings alike).
fn degrade_full_verify_reference(
    solution: Solution,
    vms: &[VmSpec],
    platform: &Platform,
    seed: u64,
    policy: &vc2m_alloc::DegradationPolicy,
) -> vc2m_alloc::DegradationOutcome {
    let mut working: Vec<VmSpec> = vms.to_vec();
    let mut report = vc2m_alloc::DegradationReport::default();
    while !working.is_empty() && report.attempts < policy.max_attempts {
        report.attempts += 1;
        let failure = match solution.try_allocate(&working, platform, seed) {
            Ok(outcome) => match outcome.into_allocation() {
                Some(allocation) => match allocation.verify(platform) {
                    Ok(()) => {
                        report.admitted = working.iter().map(|vm| vm.id()).collect();
                        return vc2m_alloc::DegradationOutcome {
                            allocation: Some(allocation),
                            report,
                        };
                    }
                    Err(e) => format!("verification failed: {e}"),
                },
                None => "workload not schedulable".to_string(),
            },
            Err(e) => e.to_string(),
        };
        // Shed the heaviest VM, first position winning ties, exactly
        // like the production controller.
        let mut heaviest: Option<(usize, f64)> = None;
        for (i, vm) in working.iter().enumerate() {
            let u = vm.reference_utilization();
            if heaviest.is_none_or(|(_, best)| u > best) {
                heaviest = Some((i, u));
            }
        }
        if let Some((index, utilization)) = heaviest {
            let vm = working.remove(index);
            report.shed.push(vc2m_alloc::ShedVm {
                vm: vm.id(),
                utilization,
                criticality: vc2m_alloc::Criticality::Lo,
                attempt: report.attempts,
                reason: failure,
            });
        }
    }
    vc2m_alloc::DegradationOutcome {
        allocation: None,
        report,
    }
}

#[test]
fn degradation_partial_verify_matches_full_verify_reference() {
    check(24, |rng| {
        let platform = Platform::platform_a();
        let seed = rng.gen_range(0u64..5_000);
        // Overloaded often enough that shedding (and thus the retry
        // path the optimisation targets) is actually exercised.
        let utilization = rng.gen_range(1.5f64..6.0);
        let vm_count = rng.gen_range(2usize..6);
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(utilization, UtilizationDist::Uniform).with_vm_count(vm_count),
            seed,
        );
        let vms = generator.generate_vms();
        let policy = vc2m_alloc::DegradationPolicy::default();
        for solution in [Solution::HeuristicFlattening, Solution::Auto] {
            let fast =
                vc2m_alloc::allocate_with_degradation(solution, &vms, &platform, seed, &policy);
            let reference =
                degrade_full_verify_reference(solution, &vms, &platform, seed, &policy);
            assert_eq!(fast, reference, "divergence at seed {seed} ({solution})");
        }
    });
}
