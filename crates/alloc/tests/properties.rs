//! Property-based tests for the allocation algorithms.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vc2m_alloc::kmeans::kmeans;
use vc2m_alloc::packing::{best_fit_open, sort_decreasing, worst_fit_fixed, Item};
use vc2m_alloc::Solution;
use vc2m_model::{Platform, TaskSet, VmId, VmSpec};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assignment_is_a_partition(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3),
            0..30,
        ),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let clustering = kmeans(&refs, k, &mut rng);
        prop_assert_eq!(clustering.assignment().len(), points.len());
        // Every point in exactly one cluster, clusters within range.
        let members = clustering.members();
        let total: usize = members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, points.len());
        for &c in clustering.assignment() {
            prop_assert!(c < clustering.k().max(1));
        }
    }

    #[test]
    fn worst_fit_covers_all_items_exactly_once(
        sizes in proptest::collection::vec(0.0f64..1.0, 0..40),
        bins in 1usize..8,
    ) {
        let mut items: Vec<Item> = sizes.iter().enumerate().map(|(i, &s)| Item::new(i, s)).collect();
        sort_decreasing(&mut items);
        let packed = worst_fit_fixed(&items, bins);
        prop_assert_eq!(packed.len(), bins);
        let mut seen: Vec<usize> = packed.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(seen, expected);
        // Balance property: max and min loads differ by at most the
        // largest item.
        let loads: Vec<f64> = packed
            .iter()
            .map(|bin| bin.iter().map(|&i| sizes[i]).sum())
            .collect();
        if !sizes.is_empty() {
            let max_load = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min_load = loads.iter().cloned().fold(f64::INFINITY, f64::min);
            let biggest = sizes.iter().cloned().fold(0.0, f64::max);
            prop_assert!(max_load - min_load <= biggest + 1e-9);
        }
    }

    #[test]
    fn best_fit_respects_capacity_and_covers_items(
        sizes in proptest::collection::vec(0.01f64..0.9, 0..40),
    ) {
        let mut items: Vec<Item> = sizes.iter().enumerate().map(|(i, &s)| Item::new(i, s)).collect();
        sort_decreasing(&mut items);
        let packed = best_fit_open(&items);
        let mut seen: Vec<usize> = packed.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(seen, expected);
        for bin in &packed {
            let load: f64 = bin.iter().map(|&i| sizes[i]).sum();
            prop_assert!(load <= 1.0 + 1e-9);
        }
        // First-fit-decreasing-style bound sanity: not absurdly many bins.
        let total: f64 = sizes.iter().sum();
        prop_assert!(packed.len() <= (2.0 * total).ceil() as usize + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_schedulable_outcome_passes_verification(
        target in 0.3f64..1.8,
        seed in 0u64..500,
    ) {
        let platform = Platform::platform_a();
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(target, UtilizationDist::Uniform),
            seed,
        );
        let tasks: TaskSet = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks).unwrap()];
        // The cheap solutions (skip the two existing-CSA ones: their
        // 380-cell budget searches make property testing slow).
        for solution in [
            Solution::HeuristicFlattening,
            Solution::HeuristicOverheadFree,
            Solution::EvenlyPartition,
        ] {
            if let Some(allocation) = solution.allocate(&vms, &platform, seed).into_allocation() {
                prop_assert!(
                    allocation.verify(&platform).is_ok(),
                    "{} produced an invalid allocation",
                    solution
                );
                // Task coverage: every task appears on exactly one VCPU.
                let mut ids: Vec<usize> = allocation
                    .vcpus()
                    .iter()
                    .flat_map(|v| v.tasks().iter().map(|t| t.index()))
                    .collect();
                let n = ids.len();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), n, "{}: task assigned twice", solution);
            }
        }
    }

    #[test]
    fn vc2m_dominates_baseline_statistically(seed in 0u64..200) {
        // Pointwise on a single taskset the heuristic could be unlucky,
        // but at this light utilization flattening must always succeed,
        // and whenever the baseline succeeds so does flattening.
        let platform = Platform::platform_a();
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(0.6, UtilizationDist::Uniform),
            seed,
        );
        let tasks: TaskSet = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks).unwrap()];
        let flattening = Solution::HeuristicFlattening.allocate(&vms, &platform, seed);
        prop_assert!(flattening.is_schedulable(), "flattening failed at u*=0.6");
    }
}
