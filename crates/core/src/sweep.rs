//! The schedulability-experiment engine behind Figures 2–4.
//!
//! A *sweep* generates random tasksets at each target reference
//! utilization (0.1 to 2.0 in the paper, 50 tasksets per point),
//! analyzes every taskset with each of the five solutions, and records
//! the fraction of schedulable tasksets (Figures 2 and 3) and the
//! analysis running time (Figure 4). The same tasksets are presented
//! to every solution, as in the paper.
//!
//! The unit of work is one `(utilization point, repetition)` pair: the
//! pair derives its own seed, generates its taskset, and analyzes it
//! with every configured solution through one shared [`AnalysisCache`]
//! (enabled via [`SweepConfig::use_cache`]). [`run_sweep_parallel`]
//! distributes these units — not whole points — over worker threads,
//! so load stays balanced even when the thread count approaches the
//! number of points; per-cell results merge by plain integer addition,
//! which is order-independent, so the parallel sweep is cell-for-cell
//! identical to the serial one (the sweep conformance suite pins
//! this).

use std::fmt;
use std::time::{Duration, Instant};
use vc2m_alloc::Solution;
use vc2m_analysis::{AnalysisCache, CacheStats, KernelCounters};
use vc2m_model::{Platform, VmId, VmSpec};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

/// Inclusive floating-point range with step, e.g.
/// `utilization_steps(0.1, 2.0, 0.05)` for the paper's x-axis.
///
/// # Panics
///
/// Panics if `step` is not positive or `to < from`.
pub fn utilization_steps(from: f64, to: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    assert!(to >= from, "need to >= from");
    let n = ((to - from) / step).round() as usize;
    (0..=n).map(|i| from + i as f64 * step).collect()
}

/// Configuration of a schedulability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The platform (Figures 2a/2b/2c use Platforms A/B/C).
    pub platform: Platform,
    /// Task utilization distribution (Figure 3 uses the bimodals).
    pub distribution: UtilizationDist,
    /// The taskset reference utilizations to sweep.
    pub utilizations: Vec<f64>,
    /// Independent tasksets per utilization point (50 in the paper).
    pub tasksets_per_point: usize,
    /// The solutions to compare.
    pub solutions: Vec<Solution>,
    /// Base RNG seed; every (point, taskset) pair derives its own.
    pub base_seed: u64,
    /// Whether each work unit's solutions share an [`AnalysisCache`].
    /// Results are bit-identical either way; the cache only removes
    /// redundant minimal-budget computations.
    pub use_cache: bool,
}

impl SweepConfig {
    /// The paper's full experimental scale: utilization 0.1..2.0 step
    /// 0.05, 50 tasksets per point, all five solutions (1950 tasksets,
    /// each analyzed five ways — expect minutes of compute in release
    /// mode, dominated by the existing-CSA solutions).
    pub fn paper(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.1, 2.0, 0.05),
            tasksets_per_point: 50,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
            use_cache: true,
        }
    }

    /// A scaled-down sweep (step 0.2, 8 tasksets per point) that
    /// reproduces the curves' shape in seconds. Used by examples and
    /// smoke benches.
    pub fn quick(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.2, 2.0, 0.2),
            tasksets_per_point: 8,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
            use_cache: true,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy restricted to the given solutions.
    pub fn with_solutions(mut self, solutions: Vec<Solution>) -> Self {
        self.solutions = solutions;
        self
    }

    /// Returns a copy with the analysis cache switched on or off.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Total `(point, repetition)` work units of this sweep.
    pub fn total_units(&self) -> usize {
        self.utilizations.len() * self.tasksets_per_point
    }
}

/// Aggregate result for one (utilization, solution) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCell {
    /// Tasksets deemed schedulable.
    pub schedulable: usize,
    /// Tasksets analyzed.
    pub total: usize,
    /// Total analysis wall-clock time over all tasksets in the cell.
    pub runtime: Duration,
}

impl SweepCell {
    /// Fraction of schedulable tasksets (0 if the cell is empty).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.schedulable as f64 / self.total as f64
        }
    }

    /// Mean analysis time per taskset, in seconds.
    pub fn avg_runtime_s(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.runtime.as_secs_f64() / self.total as f64
        }
    }
}

/// One row of a sweep: a utilization point with one cell per solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The taskset reference utilization of this point.
    pub utilization: f64,
    /// One cell per configured solution, in configuration order.
    pub cells: Vec<SweepCell>,
}

/// The complete result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    solutions: Vec<Solution>,
    rows: Vec<SweepRow>,
    cache: CacheStats,
    kernel: KernelCounters,
}

impl SweepResults {
    /// The solutions, in column order.
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Aggregated analysis-cache counters over all work units (all
    /// zero when the sweep ran with [`SweepConfig::use_cache`] off).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// Aggregated schedulability-kernel telemetry over all work units:
    /// checkpoint merges/emissions/truncations, fallback horizons, and
    /// `can_schedule`/`min_budget`/solver-probe call counts. Every work
    /// unit snapshots its thread's counters before and after analysis
    /// and contributes the delta, so the totals are exact and
    /// order-independent regardless of how units were distributed over
    /// worker threads.
    pub fn kernel_stats(&self) -> KernelCounters {
        self.kernel
    }

    /// The rows, in utilization order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The cell for `solution` at row `row`.
    ///
    /// # Panics
    ///
    /// Panics if the solution was not part of the sweep or the row is
    /// out of range.
    pub fn cell(&self, row: usize, solution: Solution) -> &SweepCell {
        let col = self
            .solutions
            .iter()
            .position(|&s| s == solution)
            .expect("solution was part of the sweep");
        &self.rows[row].cells[col]
    }

    /// The *breakdown utilization* of a solution: the largest swept
    /// utilization at which every taskset was still schedulable
    /// (the paper: "the utilization after which tasksets start to
    /// become unschedulable"). `None` if even the smallest point had
    /// failures.
    pub fn breakdown_utilization(&self, solution: Solution) -> Option<f64> {
        let col = self
            .solutions
            .iter()
            .position(|&s| s == solution)
            .expect("solution was part of the sweep");
        self.rows
            .iter()
            .take_while(|row| row.cells[col].fraction() >= 1.0 - 1e-12)
            .last()
            .map(|row| row.utilization)
    }

    /// Serializes the schedulable fractions as CSV
    /// (`utilization,<solution>...`).
    pub fn fractions_csv(&self) -> String {
        let mut out = String::from("utilization");
        for s in &self.solutions {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:.2}", row.utilization));
            for cell in &row.cells {
                out.push_str(&format!(",{:.4}", cell.fraction()));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the average running times (seconds) as CSV.
    pub fn runtimes_csv(&self) -> String {
        let mut out = String::from("utilization");
        for s in &self.solutions {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:.2}", row.utilization));
            for cell in &row.cells {
                out.push_str(&format!(",{:.6}", cell.avg_runtime_s()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SweepResults {
    /// Renders the schedulable-fraction table with one column per
    /// solution.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6}", "u*")?;
        for s in &self.solutions {
            write!(f, " {:>9}", short_name(*s))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:>6.2}", row.utilization)?;
            for cell in &row.cells {
                write!(f, " {:>9.2}", cell.fraction())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn short_name(s: Solution) -> &'static str {
    match s {
        Solution::HeuristicFlattening => "flatten",
        Solution::HeuristicOverheadFree => "ovh-free",
        Solution::HeuristicExisting => "heur-csa",
        Solution::EvenlyPartition => "even",
        Solution::Baseline => "baseline",
        Solution::Auto => "auto",
    }
}

/// Runs a sweep, invoking `progress` after each utilization point with
/// `(points_done, points_total)`.
pub fn run_sweep_with_progress(
    config: &SweepConfig,
    mut progress: impl FnMut(usize, usize),
) -> SweepResults {
    let mut rows = Vec::with_capacity(config.utilizations.len());
    let mut cache = CacheStats::default();
    let mut kernel = KernelCounters::new();
    for pi in 0..config.utilizations.len() {
        let mut row = empty_row(config, pi);
        for rep in 0..config.tasksets_per_point {
            merge_unit(&mut row, &mut cache, &mut kernel, sweep_unit(config, pi, rep));
        }
        rows.push(row);
        progress(pi + 1, config.utilizations.len());
    }
    SweepResults {
        solutions: config.solutions.clone(),
        rows,
        cache,
        kernel,
    }
}

/// Runs a sweep silently.
pub fn run_sweep(config: &SweepConfig) -> SweepResults {
    run_sweep_with_progress(config, |_, _| {})
}

/// Runs a sweep with the `(point, repetition)` work units distributed
/// over `threads` worker threads.
///
/// Results are **identical** to [`run_sweep`]: every unit derives its
/// own seed and cells merge by order-independent addition, so the
/// partitioning cannot change any outcome — only the wall-clock time.
/// Repetition granularity (1950 units at paper scale rather than ≤ 39
/// points) keeps the work queue balanced even at thread counts where
/// whole points would leave most workers idle. `progress` is called
/// from worker threads as units complete, with monotonically
/// increasing `(units_done, units_total)` counts, ending at
/// `(units_total, units_total)`; it runs under the result lock, so it
/// must not block on the sweep itself.
///
/// # Panics
///
/// Panics if `threads` is zero, or if a worker thread panics.
pub fn run_sweep_parallel(
    config: &SweepConfig,
    threads: usize,
    progress: impl Fn(usize, usize) + Sync,
) -> SweepResults {
    assert!(threads > 0, "need at least one thread");
    let points = config.utilizations.len();
    let reps = config.tasksets_per_point;
    let total_units = points * reps;
    let mut rows: Vec<SweepRow> = (0..points).map(|pi| empty_row(config, pi)).collect();
    let mut cache = CacheStats::default();
    let mut kernel = KernelCounters::new();
    // One lock guards row merging, stats aggregation and the progress
    // counter, so observed (done, total) pairs are strictly monotone.
    let merged = std::sync::Mutex::new((&mut rows, &mut cache, &mut kernel, 0usize));
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(total_units.max(1)) {
            scope.spawn(|| loop {
                let unit = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if unit >= total_units {
                    break;
                }
                let (pi, rep) = (unit / reps, unit % reps);
                let outcome = sweep_unit(config, pi, rep);
                let mut guard = merged.lock().expect("no poisoned workers");
                let (rows, cache, kernel, done) = &mut *guard;
                merge_unit(&mut rows[pi], cache, kernel, outcome);
                *done += 1;
                progress(*done, total_units);
            });
        }
    });

    SweepResults {
        solutions: config.solutions.clone(),
        rows,
        cache,
        kernel,
    }
}

/// Per-solution outcome of one `(point, repetition)` work unit.
struct UnitOutcome {
    /// `(schedulable, analysis wall-clock)` per solution, in
    /// configuration order.
    cells: Vec<(bool, Duration)>,
    cache: CacheStats,
    /// The worker thread's kernel-counter delta over this unit's
    /// analyses (thread-local snapshots taken before and after).
    kernel: KernelCounters,
}

/// A point's row with every cell still empty.
fn empty_row(config: &SweepConfig, point_index: usize) -> SweepRow {
    SweepRow {
        utilization: config.utilizations[point_index],
        cells: vec![SweepCell::default(); config.solutions.len()],
    }
}

/// Folds a unit's outcome into its row. All updates are plain integer
/// additions (`Duration` included), so merge order cannot affect the
/// result.
fn merge_unit(
    row: &mut SweepRow,
    cache: &mut CacheStats,
    kernel: &mut KernelCounters,
    unit: UnitOutcome,
) {
    for (cell, (schedulable, elapsed)) in row.cells.iter_mut().zip(unit.cells) {
        cell.total += 1;
        cell.runtime += elapsed;
        if schedulable {
            cell.schedulable += 1;
        }
    }
    cache.merge(unit.cache);
    kernel.merge(&unit.kernel);
}

/// Computes one `(point, repetition)` work unit: generates the unit's
/// taskset and analyzes it with every configured solution, all sharing
/// one [`AnalysisCache`] when [`SweepConfig::use_cache`] is set — the
/// paper's methodology presents the *same* taskset to every solution,
/// which is exactly when analyses repeat each other's budget searches.
/// Deterministic in `(config.base_seed, point_index, rep)`.
fn sweep_unit(config: &SweepConfig, point_index: usize, rep: usize) -> UnitOutcome {
    let utilization = config.utilizations[point_index];
    let seed = config
        .base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point_index as u64) << 32)
        .wrapping_add(rep as u64);
    let mut generator = TasksetGenerator::new(
        config.platform.resources(),
        TasksetConfig::new(utilization, config.distribution),
        seed,
    );
    let tasks = generator.generate();
    let vms = vec![VmSpec::new(VmId(0), tasks).expect("generated taskset is non-empty")];
    let cache = if config.use_cache {
        AnalysisCache::enabled()
    } else {
        AnalysisCache::disabled()
    };
    // Kernel counters are thread-local; the delta across this unit's
    // analyses is this unit's exact contribution no matter which
    // worker thread ran it (units never interleave within a thread).
    let kernel_before = vc2m_sched::kernel::counters();
    let cells = config
        .solutions
        .iter()
        .map(|&solution| {
            let start = Instant::now();
            let outcome = solution.allocate_with_cache(&vms, &config.platform, seed, &cache);
            (outcome.is_schedulable(), start.elapsed())
        })
        .collect();
    UnitOutcome {
        cells,
        cache: cache.stats(),
        kernel: vc2m_sched::kernel::counters().since(&kernel_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_cover_range_inclusively() {
        let s = utilization_steps(0.1, 2.0, 0.05);
        assert_eq!(s.len(), 39);
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[38] - 2.0).abs() < 1e-9);
        assert_eq!(utilization_steps(1.0, 1.0, 0.5), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = utilization_steps(0.1, 2.0, 0.0);
    }

    #[test]
    fn cell_math() {
        let cell = SweepCell {
            schedulable: 3,
            total: 4,
            runtime: Duration::from_millis(200),
        };
        assert_eq!(cell.fraction(), 0.75);
        assert!((cell.avg_runtime_s() - 0.05).abs() < 1e-12);
        assert_eq!(SweepCell::default().fraction(), 0.0);
    }

    #[test]
    fn tiny_sweep_has_expected_shape() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.3, 3.0],
            tasksets_per_point: 3,
            solutions: vec![Solution::HeuristicFlattening, Solution::Baseline],
            base_seed: 7,
            use_cache: true,
        };
        let results = run_sweep(&config);
        assert_eq!(results.rows().len(), 2);
        // Utilization 0.3 on 4 cores: everything schedulable under
        // flattening.
        assert_eq!(
            results.cell(0, Solution::HeuristicFlattening).fraction(),
            1.0
        );
        // Utilization 3.0 with slowdown ≥ 1: baseline cannot schedule.
        assert_eq!(results.cell(1, Solution::Baseline).fraction(), 0.0);
        // Flattening dominates the baseline everywhere.
        for row in 0..2 {
            assert!(
                results.cell(row, Solution::HeuristicFlattening).fraction()
                    >= results.cell(row, Solution::Baseline).fraction()
            );
        }
    }

    #[test]
    fn breakdown_utilization_detects_cliff() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.3, 0.6],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 3,
            use_cache: true,
        };
        let results = run_sweep(&config);
        let breakdown = results.breakdown_utilization(Solution::HeuristicFlattening);
        assert!(breakdown.is_some());
        assert!(breakdown.unwrap() >= 0.3);
    }

    #[test]
    fn csv_serialization() {
        let config = SweepConfig {
            platform: Platform::platform_c(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.4],
            tasksets_per_point: 1,
            solutions: vec![Solution::Baseline],
            base_seed: 1,
            use_cache: true,
        };
        let results = run_sweep(&config);
        let csv = results.fractions_csv();
        assert!(csv.starts_with("utilization,Baseline (existing CSA)\n"));
        assert!(csv.lines().count() == 2);
        assert!(results.runtimes_csv().contains("0.40,"));
        let display = results.to_string();
        assert!(display.contains("baseline"));
    }

    #[test]
    fn progress_callback_fires_per_point() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.2, 0.4, 0.6],
            tasksets_per_point: 1,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 1,
            use_cache: true,
        };
        let mut calls = Vec::new();
        let _ = run_sweep_with_progress(&config, |done, total| calls.push((done, total)));
        assert_eq!(calls, vec![(1, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn parallel_equals_serial() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.4, 0.8, 1.2],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicFlattening, Solution::Baseline],
            base_seed: 13,
            use_cache: true,
        };
        let serial = run_sweep(&config);
        let parallel = run_sweep_parallel(&config, 3, |_, _| {});
        assert_eq!(serial.fractions_csv(), parallel.fractions_csv());
        assert_eq!(serial.solutions(), parallel.solutions());
        // Kernel telemetry is a sum of per-unit deltas: identical no
        // matter how the units were spread over worker threads.
        assert_eq!(serial.kernel_stats(), parallel.kernel_stats());
        assert!(serial.kernel_stats().vcpu_builds > 0, "no VCPUs built?");
        assert!(serial.kernel_stats().checkpoint_merges > 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform);
        let _ = run_sweep_parallel(&config, 0, |_, _| {});
    }

    #[test]
    fn determinism() {
        let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform)
            .with_solutions(vec![Solution::HeuristicFlattening])
            .with_seed(5);
        let mut small = config;
        small.utilizations = vec![0.5, 1.0];
        small.tasksets_per_point = 2;
        let a = run_sweep(&small);
        let b = run_sweep(&small);
        assert_eq!(a.fractions_csv(), b.fractions_csv());
    }

    #[test]
    fn parallel_progress_counts_units_monotonically() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.2, 0.5, 0.8],
            tasksets_per_point: 4,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 11,
            use_cache: true,
        };
        assert_eq!(config.total_units(), 12);
        let calls = std::sync::Mutex::new(Vec::new());
        let _ = run_sweep_parallel(&config, 4, |done, total| {
            calls.lock().unwrap().push((done, total));
        });
        let calls = calls.into_inner().unwrap();
        assert_eq!(calls.len(), 12);
        for (i, &(done, total)) in calls.iter().enumerate() {
            assert_eq!(total, 12);
            assert_eq!(done, i + 1, "progress counts must be strictly monotone");
        }
        assert_eq!(calls.last(), Some(&(12, 12)));
    }

    #[test]
    fn cached_sweep_equals_uncached() {
        let base = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.6, 1.2],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicExisting, Solution::Baseline],
            base_seed: 21,
            use_cache: true,
        };
        let cached = run_sweep(&base);
        let uncached = run_sweep(&base.clone().with_cache(false));
        assert_eq!(cached.fractions_csv(), uncached.fractions_csv());
        assert!(cached.cache_stats().hits > 0, "cache never hit");
        assert_eq!(uncached.cache_stats(), CacheStats::default());
    }

    #[test]
    fn zero_repetitions_yield_empty_cells() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.5, 1.0],
            tasksets_per_point: 0,
            solutions: vec![Solution::Baseline],
            base_seed: 1,
            use_cache: true,
        };
        for results in [run_sweep(&config), run_sweep_parallel(&config, 2, |_, _| {})] {
            assert_eq!(results.rows().len(), 2);
            assert_eq!(results.cell(0, Solution::Baseline).total, 0);
            assert_eq!(results.cell(0, Solution::Baseline).fraction(), 0.0);
        }
    }
}
