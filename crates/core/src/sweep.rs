//! The schedulability-experiment engine behind Figures 2–4.
//!
//! A *sweep* generates random tasksets at each target reference
//! utilization (0.1 to 2.0 in the paper, 50 tasksets per point),
//! analyzes every taskset with each of the five solutions, and records
//! the fraction of schedulable tasksets (Figures 2 and 3) and the
//! analysis running time (Figure 4). The same tasksets are presented
//! to every solution, as in the paper.

use std::fmt;
use std::time::{Duration, Instant};
use vc2m_alloc::Solution;
use vc2m_model::{Platform, VmId, VmSpec};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

/// Inclusive floating-point range with step, e.g.
/// `utilization_steps(0.1, 2.0, 0.05)` for the paper's x-axis.
///
/// # Panics
///
/// Panics if `step` is not positive or `to < from`.
pub fn utilization_steps(from: f64, to: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    assert!(to >= from, "need to >= from");
    let n = ((to - from) / step).round() as usize;
    (0..=n).map(|i| from + i as f64 * step).collect()
}

/// Configuration of a schedulability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The platform (Figures 2a/2b/2c use Platforms A/B/C).
    pub platform: Platform,
    /// Task utilization distribution (Figure 3 uses the bimodals).
    pub distribution: UtilizationDist,
    /// The taskset reference utilizations to sweep.
    pub utilizations: Vec<f64>,
    /// Independent tasksets per utilization point (50 in the paper).
    pub tasksets_per_point: usize,
    /// The solutions to compare.
    pub solutions: Vec<Solution>,
    /// Base RNG seed; every (point, taskset) pair derives its own.
    pub base_seed: u64,
}

impl SweepConfig {
    /// The paper's full experimental scale: utilization 0.1..2.0 step
    /// 0.05, 50 tasksets per point, all five solutions (1950 tasksets,
    /// each analyzed five ways — expect minutes of compute in release
    /// mode, dominated by the existing-CSA solutions).
    pub fn paper(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.1, 2.0, 0.05),
            tasksets_per_point: 50,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
        }
    }

    /// A scaled-down sweep (step 0.2, 8 tasksets per point) that
    /// reproduces the curves' shape in seconds. Used by examples and
    /// smoke benches.
    pub fn quick(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.2, 2.0, 0.2),
            tasksets_per_point: 8,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy restricted to the given solutions.
    pub fn with_solutions(mut self, solutions: Vec<Solution>) -> Self {
        self.solutions = solutions;
        self
    }
}

/// Aggregate result for one (utilization, solution) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCell {
    /// Tasksets deemed schedulable.
    pub schedulable: usize,
    /// Tasksets analyzed.
    pub total: usize,
    /// Total analysis wall-clock time over all tasksets in the cell.
    pub runtime: Duration,
}

impl SweepCell {
    /// Fraction of schedulable tasksets (0 if the cell is empty).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.schedulable as f64 / self.total as f64
        }
    }

    /// Mean analysis time per taskset, in seconds.
    pub fn avg_runtime_s(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.runtime.as_secs_f64() / self.total as f64
        }
    }
}

/// One row of a sweep: a utilization point with one cell per solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The taskset reference utilization of this point.
    pub utilization: f64,
    /// One cell per configured solution, in configuration order.
    pub cells: Vec<SweepCell>,
}

/// The complete result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    solutions: Vec<Solution>,
    rows: Vec<SweepRow>,
}

impl SweepResults {
    /// The solutions, in column order.
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// The rows, in utilization order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The cell for `solution` at row `row`.
    ///
    /// # Panics
    ///
    /// Panics if the solution was not part of the sweep or the row is
    /// out of range.
    pub fn cell(&self, row: usize, solution: Solution) -> &SweepCell {
        let col = self
            .solutions
            .iter()
            .position(|&s| s == solution)
            .expect("solution was part of the sweep");
        &self.rows[row].cells[col]
    }

    /// The *breakdown utilization* of a solution: the largest swept
    /// utilization at which every taskset was still schedulable
    /// (the paper: "the utilization after which tasksets start to
    /// become unschedulable"). `None` if even the smallest point had
    /// failures.
    pub fn breakdown_utilization(&self, solution: Solution) -> Option<f64> {
        let col = self
            .solutions
            .iter()
            .position(|&s| s == solution)
            .expect("solution was part of the sweep");
        self.rows
            .iter()
            .take_while(|row| row.cells[col].fraction() >= 1.0 - 1e-12)
            .last()
            .map(|row| row.utilization)
    }

    /// Serializes the schedulable fractions as CSV
    /// (`utilization,<solution>...`).
    pub fn fractions_csv(&self) -> String {
        let mut out = String::from("utilization");
        for s in &self.solutions {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:.2}", row.utilization));
            for cell in &row.cells {
                out.push_str(&format!(",{:.4}", cell.fraction()));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the average running times (seconds) as CSV.
    pub fn runtimes_csv(&self) -> String {
        let mut out = String::from("utilization");
        for s in &self.solutions {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:.2}", row.utilization));
            for cell in &row.cells {
                out.push_str(&format!(",{:.6}", cell.avg_runtime_s()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SweepResults {
    /// Renders the schedulable-fraction table with one column per
    /// solution.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6}", "u*")?;
        for s in &self.solutions {
            write!(f, " {:>9}", short_name(*s))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:>6.2}", row.utilization)?;
            for cell in &row.cells {
                write!(f, " {:>9.2}", cell.fraction())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn short_name(s: Solution) -> &'static str {
    match s {
        Solution::HeuristicFlattening => "flatten",
        Solution::HeuristicOverheadFree => "ovh-free",
        Solution::HeuristicExisting => "heur-csa",
        Solution::EvenlyPartition => "even",
        Solution::Baseline => "baseline",
        Solution::Auto => "auto",
    }
}

/// Runs a sweep, invoking `progress` after each utilization point with
/// `(points_done, points_total)`.
pub fn run_sweep_with_progress(
    config: &SweepConfig,
    mut progress: impl FnMut(usize, usize),
) -> SweepResults {
    let mut rows = Vec::with_capacity(config.utilizations.len());
    for pi in 0..config.utilizations.len() {
        rows.push(sweep_point(config, pi));
        progress(pi + 1, config.utilizations.len());
    }
    SweepResults {
        solutions: config.solutions.clone(),
        rows,
    }
}

/// Runs a sweep silently.
pub fn run_sweep(config: &SweepConfig) -> SweepResults {
    run_sweep_with_progress(config, |_, _| {})
}

/// Runs a sweep with the utilization points distributed over
/// `threads` worker threads.
///
/// Results are **identical** to [`run_sweep`]: every `(point,
/// repetition)` pair derives its own seed, so the partitioning cannot
/// change any outcome — only the wall-clock time. `progress` is called
/// from worker threads as points complete (total order of calls is
/// nondeterministic, the `(done, total)` counts are monotone).
///
/// # Panics
///
/// Panics if `threads` is zero, or if a worker thread panics.
pub fn run_sweep_parallel(
    config: &SweepConfig,
    threads: usize,
    progress: impl Fn(usize, usize) + Sync,
) -> SweepResults {
    assert!(threads > 0, "need at least one thread");
    let total = config.utilizations.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let mut rows: Vec<Option<SweepRow>> = Vec::new();
    rows.resize_with(total, || None);
    let rows_mutex = std::sync::Mutex::new(&mut rows);
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| loop {
                let pi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if pi >= total {
                    break;
                }
                let row = sweep_point(config, pi);
                {
                    let mut rows = rows_mutex.lock().expect("no poisoned workers");
                    rows[pi] = Some(row);
                }
                let d = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                progress(d, total);
            });
        }
    });

    SweepResults {
        solutions: config.solutions.clone(),
        rows: rows
            .into_iter()
            .map(|r| r.expect("all points computed"))
            .collect(),
    }
}

/// Computes one utilization point of a sweep (all repetitions, all
/// solutions). Deterministic in `(config.base_seed, point_index)`.
fn sweep_point(config: &SweepConfig, point_index: usize) -> SweepRow {
    let utilization = config.utilizations[point_index];
    let mut cells = vec![SweepCell::default(); config.solutions.len()];
    for rep in 0..config.tasksets_per_point {
        let seed = config
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((point_index as u64) << 32)
            .wrapping_add(rep as u64);
        let mut generator = TasksetGenerator::new(
            config.platform.resources(),
            TasksetConfig::new(utilization, config.distribution),
            seed,
        );
        let tasks = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks).expect("generated taskset is non-empty")];
        for (ci, &solution) in config.solutions.iter().enumerate() {
            let start = Instant::now();
            let outcome = solution.allocate(&vms, &config.platform, seed);
            let elapsed = start.elapsed();
            cells[ci].total += 1;
            cells[ci].runtime += elapsed;
            if outcome.is_schedulable() {
                cells[ci].schedulable += 1;
            }
        }
    }
    SweepRow { utilization, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_cover_range_inclusively() {
        let s = utilization_steps(0.1, 2.0, 0.05);
        assert_eq!(s.len(), 39);
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[38] - 2.0).abs() < 1e-9);
        assert_eq!(utilization_steps(1.0, 1.0, 0.5), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = utilization_steps(0.1, 2.0, 0.0);
    }

    #[test]
    fn cell_math() {
        let cell = SweepCell {
            schedulable: 3,
            total: 4,
            runtime: Duration::from_millis(200),
        };
        assert_eq!(cell.fraction(), 0.75);
        assert!((cell.avg_runtime_s() - 0.05).abs() < 1e-12);
        assert_eq!(SweepCell::default().fraction(), 0.0);
    }

    #[test]
    fn tiny_sweep_has_expected_shape() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.3, 3.0],
            tasksets_per_point: 3,
            solutions: vec![Solution::HeuristicFlattening, Solution::Baseline],
            base_seed: 7,
        };
        let results = run_sweep(&config);
        assert_eq!(results.rows().len(), 2);
        // Utilization 0.3 on 4 cores: everything schedulable under
        // flattening.
        assert_eq!(
            results.cell(0, Solution::HeuristicFlattening).fraction(),
            1.0
        );
        // Utilization 3.0 with slowdown ≥ 1: baseline cannot schedule.
        assert_eq!(results.cell(1, Solution::Baseline).fraction(), 0.0);
        // Flattening dominates the baseline everywhere.
        for row in 0..2 {
            assert!(
                results.cell(row, Solution::HeuristicFlattening).fraction()
                    >= results.cell(row, Solution::Baseline).fraction()
            );
        }
    }

    #[test]
    fn breakdown_utilization_detects_cliff() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.3, 0.6],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 3,
        };
        let results = run_sweep(&config);
        let breakdown = results.breakdown_utilization(Solution::HeuristicFlattening);
        assert!(breakdown.is_some());
        assert!(breakdown.unwrap() >= 0.3);
    }

    #[test]
    fn csv_serialization() {
        let config = SweepConfig {
            platform: Platform::platform_c(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.4],
            tasksets_per_point: 1,
            solutions: vec![Solution::Baseline],
            base_seed: 1,
        };
        let results = run_sweep(&config);
        let csv = results.fractions_csv();
        assert!(csv.starts_with("utilization,Baseline (existing CSA)\n"));
        assert!(csv.lines().count() == 2);
        assert!(results.runtimes_csv().contains("0.40,"));
        let display = results.to_string();
        assert!(display.contains("baseline"));
    }

    #[test]
    fn progress_callback_fires_per_point() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.2, 0.4, 0.6],
            tasksets_per_point: 1,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 1,
        };
        let mut calls = Vec::new();
        let _ = run_sweep_with_progress(&config, |done, total| calls.push((done, total)));
        assert_eq!(calls, vec![(1, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn parallel_equals_serial() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.4, 0.8, 1.2],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicFlattening, Solution::Baseline],
            base_seed: 13,
        };
        let serial = run_sweep(&config);
        let parallel = run_sweep_parallel(&config, 3, |_, _| {});
        assert_eq!(serial.fractions_csv(), parallel.fractions_csv());
        assert_eq!(serial.solutions(), parallel.solutions());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform);
        let _ = run_sweep_parallel(&config, 0, |_, _| {});
    }

    #[test]
    fn determinism() {
        let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform)
            .with_solutions(vec![Solution::HeuristicFlattening])
            .with_seed(5);
        let mut small = config;
        small.utilizations = vec![0.5, 1.0];
        small.tasksets_per_point = 2;
        let a = run_sweep(&small);
        let b = run_sweep(&small);
        assert_eq!(a.fractions_csv(), b.fractions_csv());
    }
}
