//! The schedulability-experiment engine behind Figures 2–4.
//!
//! A *sweep* generates random tasksets at each target reference
//! utilization (0.1 to 2.0 in the paper, 50 tasksets per point),
//! analyzes every taskset with each of the five solutions, and records
//! the fraction of schedulable tasksets (Figures 2 and 3) and the
//! analysis running time (Figure 4). The same tasksets are presented
//! to every solution, as in the paper.
//!
//! The unit of work is one whole utilization point: every repetition
//! of the point derives its own `(point, repetition)` seed, generates
//! its taskset, and analyzes it with every configured solution through
//! one shared [`AnalysisCache`] (enabled via
//! [`SweepConfig::use_cache`]). The cache is reset at each point
//! boundary, so a point's analysis — results, cache hit/miss sequence
//! and kernel telemetry alike — is a pure function of the
//! configuration and the point index.
//!
//! [`run_sweep_parallel`] hands these point units to worker threads
//! through a single atomic counter. Each worker owns its results,
//! its [`AnalysisCache`] (reused, reset per point, so its memo table
//! and key arena stay warm in capacity) and its kernel-counter deltas
//! outright; nothing is shared or locked on the work path, and the
//! per-thread accumulators merge once after the join. Per-cell results
//! merge by plain integer addition, which is order-independent, so the
//! parallel sweep is cell-for-cell *and* telemetry-counter identical
//! to the serial one at every thread count (the sweep conformance
//! suite pins this).

use std::fmt;
use std::time::{Duration, Instant};
use vc2m_alloc::Solution;
use vc2m_analysis::{AnalysisCache, CacheStats, KernelCounters};
use vc2m_model::{Platform, VmId, VmSpec};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

/// Inclusive floating-point range with step, e.g.
/// `utilization_steps(0.1, 2.0, 0.05)` for the paper's x-axis.
///
/// # Panics
///
/// Panics if `step` is not positive or `to < from`.
pub fn utilization_steps(from: f64, to: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    assert!(to >= from, "need to >= from");
    let n = ((to - from) / step).round() as usize;
    (0..=n).map(|i| from + i as f64 * step).collect()
}

/// Configuration of a schedulability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The platform (Figures 2a/2b/2c use Platforms A/B/C).
    pub platform: Platform,
    /// Task utilization distribution (Figure 3 uses the bimodals).
    pub distribution: UtilizationDist,
    /// The taskset reference utilizations to sweep.
    pub utilizations: Vec<f64>,
    /// Independent tasksets per utilization point (50 in the paper).
    pub tasksets_per_point: usize,
    /// The solutions to compare.
    pub solutions: Vec<Solution>,
    /// Base RNG seed; every (point, taskset) pair derives its own.
    pub base_seed: u64,
    /// Whether each work unit's solutions share an [`AnalysisCache`].
    /// Results are bit-identical either way; the cache only removes
    /// redundant minimal-budget computations.
    pub use_cache: bool,
}

impl SweepConfig {
    /// The paper's full experimental scale: utilization 0.1..2.0 step
    /// 0.05, 50 tasksets per point, all five solutions (1950 tasksets,
    /// each analyzed five ways — expect minutes of compute in release
    /// mode, dominated by the existing-CSA solutions).
    pub fn paper(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.1, 2.0, 0.05),
            tasksets_per_point: 50,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
            use_cache: true,
        }
    }

    /// A scaled-down sweep (step 0.2, 8 tasksets per point) that
    /// reproduces the curves' shape in seconds. Used by examples and
    /// smoke benches.
    pub fn quick(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.2, 2.0, 0.2),
            tasksets_per_point: 8,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
            use_cache: true,
        }
    }

    /// A campaign-scale sweep: the paper's utilization range at step
    /// 0.001 (1 901 points, 3 tasksets each — 5 703 work units, ~3×
    /// the paper preset) with all five solutions. This is the regime
    /// the coarse-grained parallel scheduler is built for — thousands
    /// of independent points to spread over threads — and the headline
    /// configuration of the `sweep_scaling` bench (`--fleet`). The
    /// dense utilization grid is also what a search-based allocator's
    /// fitness loop would evaluate.
    pub fn fleet(platform: Platform, distribution: UtilizationDist) -> Self {
        SweepConfig {
            platform,
            distribution,
            utilizations: utilization_steps(0.1, 2.0, 0.001),
            tasksets_per_point: 3,
            solutions: Solution::ALL.to_vec(),
            base_seed: 0xDAC_2019,
            use_cache: true,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy restricted to the given solutions.
    pub fn with_solutions(mut self, solutions: Vec<Solution>) -> Self {
        self.solutions = solutions;
        self
    }

    /// Returns a copy with the analysis cache switched on or off.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Total `(point, repetition)` work units of this sweep.
    pub fn total_units(&self) -> usize {
        self.utilizations.len() * self.tasksets_per_point
    }
}

/// Aggregate result for one (utilization, solution) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCell {
    /// Tasksets deemed schedulable.
    pub schedulable: usize,
    /// Tasksets analyzed.
    pub total: usize,
    /// Total analysis wall-clock time over all tasksets in the cell.
    pub runtime: Duration,
}

impl SweepCell {
    /// Fraction of schedulable tasksets (0 if the cell is empty).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.schedulable as f64 / self.total as f64
        }
    }

    /// Mean analysis time per taskset, in seconds.
    pub fn avg_runtime_s(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.runtime.as_secs_f64() / self.total as f64
        }
    }
}

/// One row of a sweep: a utilization point with one cell per solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The taskset reference utilization of this point.
    pub utilization: f64,
    /// One cell per configured solution, in configuration order.
    pub cells: Vec<SweepCell>,
}

/// The complete result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    solutions: Vec<Solution>,
    rows: Vec<SweepRow>,
    cache: CacheStats,
    kernel: KernelCounters,
}

impl SweepResults {
    /// The solutions, in column order.
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Aggregated analysis-cache counters over all work units (all
    /// zero when the sweep ran with [`SweepConfig::use_cache`] off).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// Aggregated schedulability-kernel telemetry over all work units:
    /// checkpoint merges/emissions/truncations, fallback horizons, and
    /// `can_schedule`/`min_budget`/solver-probe call counts. Every work
    /// unit snapshots its thread's counters before and after analysis
    /// and contributes the delta, so the totals are exact and
    /// order-independent regardless of how units were distributed over
    /// worker threads.
    pub fn kernel_stats(&self) -> KernelCounters {
        self.kernel
    }

    /// The rows, in utilization order.
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The cell for `solution` at row `row`.
    ///
    /// # Panics
    ///
    /// Panics if the solution was not part of the sweep or the row is
    /// out of range.
    pub fn cell(&self, row: usize, solution: Solution) -> &SweepCell {
        let col = self
            .solutions
            .iter()
            .position(|&s| s == solution)
            .expect("solution was part of the sweep");
        &self.rows[row].cells[col]
    }

    /// The *breakdown utilization* of a solution: the largest swept
    /// utilization at which every taskset was still schedulable
    /// (the paper: "the utilization after which tasksets start to
    /// become unschedulable"). `None` if even the smallest point had
    /// failures.
    pub fn breakdown_utilization(&self, solution: Solution) -> Option<f64> {
        let col = self
            .solutions
            .iter()
            .position(|&s| s == solution)
            .expect("solution was part of the sweep");
        self.rows
            .iter()
            .take_while(|row| row.cells[col].fraction() >= 1.0 - 1e-12)
            .last()
            .map(|row| row.utilization)
    }

    /// Serializes the schedulable fractions as CSV
    /// (`utilization,<solution>...`).
    pub fn fractions_csv(&self) -> String {
        let mut out = String::from("utilization");
        for s in &self.solutions {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:.2}", row.utilization));
            for cell in &row.cells {
                out.push_str(&format!(",{:.4}", cell.fraction()));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the average running times (seconds) as CSV.
    pub fn runtimes_csv(&self) -> String {
        let mut out = String::from("utilization");
        for s in &self.solutions {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:.2}", row.utilization));
            for cell in &row.cells {
                out.push_str(&format!(",{:.6}", cell.avg_runtime_s()));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SweepResults {
    /// Renders the schedulable-fraction table with one column per
    /// solution.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6}", "u*")?;
        for s in &self.solutions {
            write!(f, " {:>9}", short_name(*s))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:>6.2}", row.utilization)?;
            for cell in &row.cells {
                write!(f, " {:>9.2}", cell.fraction())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn short_name(s: Solution) -> &'static str {
    match s {
        Solution::HeuristicFlattening => "flatten",
        Solution::HeuristicOverheadFree => "ovh-free",
        Solution::HeuristicExisting => "heur-csa",
        Solution::EvenlyPartition => "even",
        Solution::Baseline => "baseline",
        Solution::Auto => "auto",
    }
}

/// Runs a sweep, invoking `progress` after each utilization point with
/// `(points_done, points_total)`.
pub fn run_sweep_with_progress(
    config: &SweepConfig,
    mut progress: impl FnMut(usize, usize),
) -> SweepResults {
    let points = config.utilizations.len();
    let mut rows = Vec::with_capacity(points);
    let mut cache_total = CacheStats::default();
    let mut kernel_total = KernelCounters::new();
    let mut cache = point_cache(config);
    for pi in 0..points {
        let outcome = sweep_point(config, pi, &mut cache);
        cache_total.merge(outcome.cache);
        kernel_total.merge(&outcome.kernel);
        rows.push(outcome.row);
        progress(pi + 1, points);
    }
    SweepResults {
        solutions: config.solutions.clone(),
        rows,
        cache: cache_total,
        kernel: kernel_total,
    }
}

/// Runs a sweep silently.
pub fn run_sweep(config: &SweepConfig) -> SweepResults {
    run_sweep_with_progress(config, |_, _| {})
}

/// Runs a sweep with whole-utilization-point work units distributed
/// over `threads` worker threads.
///
/// Results are **identical** to [`run_sweep`]: every `(point,
/// repetition)` pair derives its own seed, each point is analyzed
/// against a cache reset at the point boundary, and per-thread partial
/// results merge by order-independent addition — so the partitioning
/// cannot change any outcome, including the aggregated
/// [`CacheStats`]/[`KernelCounters`] totals; only the wall-clock time
/// differs. Workers share nothing on the work path: points are claimed
/// from one atomic counter, and each thread accumulates its rows,
/// cache counters and kernel deltas privately until one merge after
/// the join.
///
/// `progress` is called with monotonically strictly increasing
/// `(points_done, points_total)` counts — the same granularity as
/// [`run_sweep_with_progress`] — ending at `(points_total,
/// points_total)` (when there is at least one point). The callback
/// runs *outside* every lock a worker can block on: completions are
/// published through an atomic counter, and whichever thread finds the
/// reporting slot free drains the counter, so a slow callback
/// coalesces several completions into one call instead of stalling the
/// other workers.
///
/// # Panics
///
/// Panics if `threads` is zero, or if a worker thread panics.
pub fn run_sweep_parallel(
    config: &SweepConfig,
    threads: usize,
    progress: impl Fn(usize, usize) + Sync,
) -> SweepResults {
    use std::sync::atomic::{AtomicUsize, Ordering};
    assert!(threads > 0, "need at least one thread");
    let points = config.utilizations.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    // Last progress count actually reported. Workers only `try_lock`
    // it: under contention (another thread is inside the callback)
    // they skip reporting entirely — the holder's drain loop picks the
    // missed counts up — so nobody ever blocks here.
    let reported = std::sync::Mutex::new(0usize);
    let progress = &progress;

    let per_thread: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(points.max(1)))
            .map(|_| {
                scope.spawn(|| {
                    let mut outcome = ThreadOutcome::default();
                    let mut cache = point_cache(config);
                    loop {
                        let pi = next.fetch_add(1, Ordering::Relaxed);
                        if pi >= points {
                            break;
                        }
                        let unit = sweep_point(config, pi, &mut cache);
                        outcome.rows.push((pi, unit.row));
                        outcome.cache.merge(unit.cache);
                        outcome.kernel.merge(&unit.kernel);
                        done.fetch_add(1, Ordering::Release);
                        drain_progress(&reported, &done, points, progress);
                    }
                    outcome
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|worker| worker.join().expect("sweep worker panicked"))
            .collect()
    });

    // Terminal catch-up: if the last completions raced with a busy
    // reporter, the documented final (points, points) call happens
    // here, still strictly monotone (guarded by `reported`).
    {
        let mut last = reported.lock().expect("progress reporting never panicked");
        if *last < points {
            *last = points;
            progress(points, points);
        }
    }

    let mut rows: Vec<Option<SweepRow>> = (0..points).map(|_| None).collect();
    let mut cache = CacheStats::default();
    let mut kernel = KernelCounters::new();
    for outcome in per_thread {
        for (pi, row) in outcome.rows {
            debug_assert!(rows[pi].is_none(), "point {pi} swept twice");
            rows[pi] = Some(row);
        }
        cache.merge(outcome.cache);
        kernel.merge(&outcome.kernel);
    }
    SweepResults {
        solutions: config.solutions.clone(),
        rows: rows
            .into_iter()
            .map(|row| row.expect("every point was swept"))
            .collect(),
        cache,
        kernel,
    }
}

/// One worker thread's private accumulator: finished rows tagged with
/// their point index, plus the thread's cache and kernel totals.
#[derive(Default)]
struct ThreadOutcome {
    rows: Vec<(usize, SweepRow)>,
    cache: CacheStats,
    kernel: KernelCounters,
}

/// Reports the newest completion count if the reporting slot is free.
///
/// The holder drains in a loop: each pass reports the *latest* count,
/// so completions that landed while the callback ran are coalesced
/// into the next call rather than queued behind it. Reported counts
/// are strictly increasing because only the `reported` holder calls
/// `progress`, and only with counts above the last reported one.
fn drain_progress(
    reported: &std::sync::Mutex<usize>,
    done: &std::sync::atomic::AtomicUsize,
    total: usize,
    progress: &(impl Fn(usize, usize) + Sync),
) {
    let Ok(mut last) = reported.try_lock() else {
        return;
    };
    loop {
        let current = done.load(std::sync::atomic::Ordering::Acquire);
        if current <= *last {
            break;
        }
        *last = current;
        progress(current, total);
    }
}

/// Per-point outcome of one whole-point work unit.
struct PointOutcome {
    row: SweepRow,
    /// The point's cache counters (the cache is reset at the point
    /// boundary, so these are this point's exact contribution).
    cache: CacheStats,
    /// The worker thread's kernel-counter delta over this point's
    /// analyses (thread-local snapshots taken before and after).
    kernel: KernelCounters,
}

/// The per-work-unit analysis cache of `config`: enabled or a
/// pass-through, matching [`SweepConfig::use_cache`].
fn point_cache(config: &SweepConfig) -> AnalysisCache {
    if config.use_cache {
        AnalysisCache::enabled()
    } else {
        AnalysisCache::disabled()
    }
}

/// A point's row with every cell still empty.
fn empty_row(config: &SweepConfig, point_index: usize) -> SweepRow {
    SweepRow {
        utilization: config.utilizations[point_index],
        cells: vec![SweepCell::default(); config.solutions.len()],
    }
}

/// Computes one whole-point work unit: all repetitions of the point,
/// each generating its `(point, repetition)`-seeded taskset and
/// analyzing it with every configured solution.
///
/// `cache` is reset on entry and shared across the point's repetitions
/// and solutions — the paper's methodology presents the *same* taskset
/// to every solution, which is exactly when analyses repeat each
/// other's budget searches. Resetting at the point boundary (instead
/// of keeping a thread-lifetime memo) makes the point's entire
/// outcome — cells, cache counters, kernel deltas — deterministic in
/// `(config, point_index)` alone, which is what keeps the aggregated
/// telemetry independent of the thread count; the reset retains the
/// memo's grown capacity, so reuse still avoids per-unit allocation.
fn sweep_point(config: &SweepConfig, point_index: usize, cache: &mut AnalysisCache) -> PointOutcome {
    cache.reset();
    let kernel_before = vc2m_sched::kernel::counters();
    let mut row = empty_row(config, point_index);
    let utilization = config.utilizations[point_index];
    for rep in 0..config.tasksets_per_point {
        let seed = config
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((point_index as u64) << 32)
            .wrapping_add(rep as u64);
        let mut generator = TasksetGenerator::new(
            config.platform.resources(),
            TasksetConfig::new(utilization, config.distribution),
            seed,
        );
        let tasks = generator.generate();
        let vms = vec![VmSpec::new(VmId(0), tasks).expect("generated taskset is non-empty")];
        for (cell, &solution) in row.cells.iter_mut().zip(&config.solutions) {
            let start = Instant::now();
            let outcome = solution.allocate_with_cache(&vms, &config.platform, seed, cache);
            cell.total += 1;
            cell.runtime += start.elapsed();
            if outcome.is_schedulable() {
                cell.schedulable += 1;
            }
        }
    }
    PointOutcome {
        row,
        cache: cache.stats(),
        kernel: vc2m_sched::kernel::counters().since(&kernel_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_cover_range_inclusively() {
        let s = utilization_steps(0.1, 2.0, 0.05);
        assert_eq!(s.len(), 39);
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[38] - 2.0).abs() < 1e-9);
        assert_eq!(utilization_steps(1.0, 1.0, 0.5), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = utilization_steps(0.1, 2.0, 0.0);
    }

    #[test]
    fn cell_math() {
        let cell = SweepCell {
            schedulable: 3,
            total: 4,
            runtime: Duration::from_millis(200),
        };
        assert_eq!(cell.fraction(), 0.75);
        assert!((cell.avg_runtime_s() - 0.05).abs() < 1e-12);
        assert_eq!(SweepCell::default().fraction(), 0.0);
    }

    #[test]
    fn tiny_sweep_has_expected_shape() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.3, 3.0],
            tasksets_per_point: 3,
            solutions: vec![Solution::HeuristicFlattening, Solution::Baseline],
            base_seed: 7,
            use_cache: true,
        };
        let results = run_sweep(&config);
        assert_eq!(results.rows().len(), 2);
        // Utilization 0.3 on 4 cores: everything schedulable under
        // flattening.
        assert_eq!(
            results.cell(0, Solution::HeuristicFlattening).fraction(),
            1.0
        );
        // Utilization 3.0 with slowdown ≥ 1: baseline cannot schedule.
        assert_eq!(results.cell(1, Solution::Baseline).fraction(), 0.0);
        // Flattening dominates the baseline everywhere.
        for row in 0..2 {
            assert!(
                results.cell(row, Solution::HeuristicFlattening).fraction()
                    >= results.cell(row, Solution::Baseline).fraction()
            );
        }
    }

    #[test]
    fn breakdown_utilization_detects_cliff() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.3, 0.6],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 3,
            use_cache: true,
        };
        let results = run_sweep(&config);
        let breakdown = results.breakdown_utilization(Solution::HeuristicFlattening);
        assert!(breakdown.is_some());
        assert!(breakdown.unwrap() >= 0.3);
    }

    #[test]
    fn csv_serialization() {
        let config = SweepConfig {
            platform: Platform::platform_c(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.4],
            tasksets_per_point: 1,
            solutions: vec![Solution::Baseline],
            base_seed: 1,
            use_cache: true,
        };
        let results = run_sweep(&config);
        let csv = results.fractions_csv();
        assert!(csv.starts_with("utilization,Baseline (existing CSA)\n"));
        assert!(csv.lines().count() == 2);
        assert!(results.runtimes_csv().contains("0.40,"));
        let display = results.to_string();
        assert!(display.contains("baseline"));
    }

    #[test]
    fn progress_callback_fires_per_point() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.2, 0.4, 0.6],
            tasksets_per_point: 1,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 1,
            use_cache: true,
        };
        let mut calls = Vec::new();
        let _ = run_sweep_with_progress(&config, |done, total| calls.push((done, total)));
        assert_eq!(calls, vec![(1, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn parallel_equals_serial() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.4, 0.8, 1.2],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicFlattening, Solution::Baseline],
            base_seed: 13,
            use_cache: true,
        };
        let serial = run_sweep(&config);
        let parallel = run_sweep_parallel(&config, 3, |_, _| {});
        assert_eq!(serial.fractions_csv(), parallel.fractions_csv());
        assert_eq!(serial.solutions(), parallel.solutions());
        // Kernel telemetry is a sum of per-unit deltas: identical no
        // matter how the units were spread over worker threads.
        assert_eq!(serial.kernel_stats(), parallel.kernel_stats());
        assert!(serial.kernel_stats().vcpu_builds > 0, "no VCPUs built?");
        assert!(serial.kernel_stats().checkpoint_merges > 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform);
        let _ = run_sweep_parallel(&config, 0, |_, _| {});
    }

    #[test]
    fn determinism() {
        let config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform)
            .with_solutions(vec![Solution::HeuristicFlattening])
            .with_seed(5);
        let mut small = config;
        small.utilizations = vec![0.5, 1.0];
        small.tasksets_per_point = 2;
        let a = run_sweep(&small);
        let b = run_sweep(&small);
        assert_eq!(a.fractions_csv(), b.fractions_csv());
    }

    /// A cheap many-point configuration for the progress tests: 12
    /// single-repetition points under the lightest solution.
    fn progress_config() -> SweepConfig {
        SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: (1..=12).map(|i| 0.1 * i as f64).collect(),
            tasksets_per_point: 1,
            solutions: vec![Solution::HeuristicFlattening],
            base_seed: 11,
            use_cache: true,
        }
    }

    #[test]
    fn parallel_progress_is_point_granular_and_monotone() {
        // With one worker there is never reporter contention, so every
        // point reports individually: the exact serial sequence.
        let config = progress_config();
        let calls = std::sync::Mutex::new(Vec::new());
        let _ = run_sweep_parallel(&config, 1, |done, total| {
            calls.lock().unwrap().push((done, total));
        });
        let calls = calls.into_inner().unwrap();
        assert_eq!(calls, (1..=12).map(|done| (done, 12)).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_progress_coalesces_instead_of_stalling_workers() {
        // Regression for the historical driver, which invoked the
        // callback while holding the global merge lock: a slow callback
        // stalled every worker, and exactly one call per unit was the
        // observable signature. Under the coalescing reporter the
        // workers keep completing points while a callback sleeps, and
        // the drain loop folds those completions into later calls —
        // strictly monotone, terminal (total, total), but fewer calls
        // than points.
        let config = progress_config();
        let calls = std::sync::Mutex::new(Vec::<(usize, usize)>::new());
        let _ = run_sweep_parallel(&config, 4, |done, total| {
            let first = {
                let mut calls = calls.lock().unwrap();
                calls.push((done, total));
                calls.len() == 1
            };
            // One long stall on the first call: points completed by the
            // other workers in the meantime must coalesce.
            std::thread::sleep(std::time::Duration::from_millis(if first {
                500
            } else {
                10
            }));
        });
        let calls = calls.into_inner().unwrap();
        assert!(!calls.is_empty());
        for pair in calls.windows(2) {
            assert!(
                pair[1].0 > pair[0].0,
                "progress counts must be strictly monotone: {calls:?}"
            );
        }
        assert!(calls.iter().all(|&(_, total)| total == 12));
        assert_eq!(calls.last(), Some(&(12, 12)));
        assert!(
            calls.len() < 12,
            "a sleeping callback must coalesce completions, not stall workers: {calls:?}"
        );
    }

    #[test]
    fn cached_sweep_equals_uncached() {
        let base = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.6, 1.2],
            tasksets_per_point: 2,
            solutions: vec![Solution::HeuristicExisting, Solution::Baseline],
            base_seed: 21,
            use_cache: true,
        };
        let cached = run_sweep(&base);
        let uncached = run_sweep(&base.clone().with_cache(false));
        assert_eq!(cached.fractions_csv(), uncached.fractions_csv());
        assert!(cached.cache_stats().hits > 0, "cache never hit");
        assert_eq!(uncached.cache_stats(), CacheStats::default());
    }

    #[test]
    fn zero_repetitions_yield_empty_cells() {
        let config = SweepConfig {
            platform: Platform::platform_a(),
            distribution: UtilizationDist::Uniform,
            utilizations: vec![0.5, 1.0],
            tasksets_per_point: 0,
            solutions: vec![Solution::Baseline],
            base_seed: 1,
            use_cache: true,
        };
        for results in [run_sweep(&config), run_sweep_parallel(&config, 2, |_, _| {})] {
            assert_eq!(results.rows().len(), 2);
            assert_eq!(results.cell(0, Solution::Baseline).total, 0);
            assert_eq!(results.cell(0, Solution::Baseline).fraction(), 0.0);
        }
    }
}
