//! Replayable admission-request traces and the streaming driver.
//!
//! The admission engine ([`vc2m_alloc::admission`]) consumes a stream
//! of arrival/departure/mode-change requests. This module defines the
//! *trace*: a seeded, fully replayable representation of such a stream
//! with a stable text format (`vc2m-admission-trace-v1`), a generator
//! producing fleet-style churn (bounded live-set size, small VMs,
//! occasional mode changes and concurrent-arrival batches), and the
//! driver that replays a trace into an engine.
//!
//! # Text format
//!
//! One request per line; `#` starts a comment. Utilizations are stored
//! in milli-units and rendered with three decimals, so parse → render
//! round-trips byte-for-byte:
//!
//! ```text
//! # vc2m-admission-trace-v1
//! hosts 4
//! arrive 1 0.180 9054
//! mode 1 0.240 117
//! depart 1
//! batch 2
//! arrive 2 0.120 53
//! arrive 3 0.305 99
//! ```
//!
//! A `batch n` header groups the next `n` arrivals into one concurrent
//! batch (admitted order-independently by the engine). An optional
//! `hosts n` directive (before any request) sizes the fleet the trace
//! targets; it is omitted from the rendering when `n == 1`, so
//! single-host traces keep their historical byte form. An optional
//! `crit <vm> <vm> ...` directive (at most one, before any request,
//! ids strictly increasing) marks those VMs HI-criticality — every VM
//! it does not name is LO, and the directive is omitted from the
//! rendering when no VM is HI, so historical trace bytes are
//! unchanged. Directives are strict: a duplicate `hosts`/`crit` line,
//! an out-of-order directive, or an unknown keyword is rejected with
//! the offending line number rather than silently tolerated.
//!
//! # Determinism
//!
//! A request's VM is materialized from `(vm id, utilization, taskset
//! seed)` alone — independent of the rest of the trace — so replaying
//! any trace against [`AdmissionEngine`]s with equal configuration
//! yields byte-identical decision logs, and a trace file pins its
//! whole workload.

use vc2m_alloc::recovery::{recover_engine, DecisionJournal, RecoveryError};
use vc2m_alloc::{
    AdmissionConfig, AdmissionEngine, AdmissionFleet, AdmissionRequest, Criticality, FleetWorkItem,
};
use vc2m_model::Platform;
use vc2m_model::{ResourceSpace, Task, TaskId, TaskSet, VmId, VmSpec};
use vc2m_rng::{DetRng, Rng};
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

/// The first line every rendered trace carries.
pub const TRACE_HEADER: &str = "# vc2m-admission-trace-v1";

/// One request of a trace, in its replayable (pre-materialized) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRequest {
    /// A VM arrives: `arrive <vm> <utilization> <seed>`.
    Arrive {
        /// The VM id.
        vm: usize,
        /// Target reference utilization in milli-units (`180` ⇒ `0.180`).
        utilization_milli: u32,
        /// Seed for the VM's taskset.
        seed: u64,
    },
    /// A VM departs: `depart <vm>`.
    Depart {
        /// The VM id.
        vm: usize,
    },
    /// A VM changes mode (replaces its taskset):
    /// `mode <vm> <utilization> <seed>`.
    Mode {
        /// The VM id.
        vm: usize,
        /// The new mode's utilization in milli-units.
        utilization_milli: u32,
        /// Seed for the new mode's taskset.
        seed: u64,
    },
}

impl TraceRequest {
    /// Renders the request's stable one-line text form (also the
    /// request half of a journal record — see [`replay_journaled`]).
    pub fn render(&self) -> String {
        match *self {
            TraceRequest::Arrive {
                vm,
                utilization_milli,
                seed,
            } => format!("arrive {vm} {:.3} {seed}", utilization_milli as f64 / 1000.0),
            TraceRequest::Depart { vm } => format!("depart {vm}"),
            TraceRequest::Mode {
                vm,
                utilization_milli,
                seed,
            } => format!("mode {vm} {:.3} {seed}", utilization_milli as f64 / 1000.0),
        }
    }

    /// Parses a single request line — the inverse of [`render`], for
    /// callers (like journal recovery) that hold one request line
    /// outside a full trace. The error carries no line number.
    ///
    /// [`render`]: TraceRequest::render
    pub fn parse_line(line: &str) -> Result<TraceRequest, String> {
        parse_request_bare(line.trim())
    }
}

/// One scheduling unit of a trace: a single request, or a batch of
/// concurrent arrivals admitted in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceItem {
    /// One request processed on its own.
    Single(TraceRequest),
    /// Concurrent arrivals admitted as one order-independent batch.
    Batch(Vec<TraceRequest>),
}

/// A replayable admission-request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionTrace {
    items: Vec<TraceItem>,
    hosts: usize,
    /// HI-criticality VM ids, strictly increasing (the `crit`
    /// directive); every other VM is LO.
    hi_vms: Vec<usize>,
}

impl Default for AdmissionTrace {
    fn default() -> Self {
        AdmissionTrace {
            items: Vec::new(),
            hosts: 1,
            hi_vms: Vec::new(),
        }
    }
}

impl AdmissionTrace {
    /// Builds a single-host, all-LO trace from items.
    pub fn from_items(items: Vec<TraceItem>) -> Self {
        AdmissionTrace {
            items,
            hosts: 1,
            hi_vms: Vec::new(),
        }
    }

    /// Marks the given VM ids HI-criticality (the `crit` directive).
    ///
    /// # Panics
    ///
    /// Panics if the ids are not strictly increasing — the same
    /// canonical form the parser enforces, so render → parse stays an
    /// exact round trip.
    pub fn with_hi_vms(mut self, hi_vms: Vec<usize>) -> Self {
        assert!(
            hi_vms.windows(2).all(|w| w[0] < w[1]),
            "crit vm ids must be strictly increasing"
        );
        self.hi_vms = hi_vms;
        self
    }

    /// The HI-criticality VM ids, strictly increasing (empty when the
    /// trace carries no `crit` directive).
    pub fn hi_vms(&self) -> &[usize] {
        &self.hi_vms
    }

    /// The criticality of `vm` under this trace's `crit` directive
    /// (LO when unnamed).
    pub fn criticality_of(&self, vm: usize) -> Criticality {
        if self.hi_vms.binary_search(&vm).is_ok() {
            Criticality::Hi
        } else {
            Criticality::Lo
        }
    }

    /// Sets the fleet size the trace targets (the `hosts` directive).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        assert!(hosts >= 1, "a trace targets at least one host");
        self.hosts = hosts;
        self
    }

    /// The fleet size the trace targets (1 when no directive was set).
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The trace's items in replay order.
    pub fn items(&self) -> &[TraceItem] {
        &self.items
    }

    /// Total number of requests (batch members count individually).
    pub fn len(&self) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                TraceItem::Single(_) => 1,
                TraceItem::Batch(requests) => requests.len(),
            })
            .sum()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the stable text form (header + one line per request,
    /// newline-terminated). `parse` of the result reproduces `self`.
    pub fn render(&self) -> String {
        let mut text = String::from(TRACE_HEADER);
        text.push('\n');
        if self.hosts > 1 {
            text.push_str(&format!("hosts {}\n", self.hosts));
        }
        if !self.hi_vms.is_empty() {
            text.push_str("crit");
            for vm in &self.hi_vms {
                text.push_str(&format!(" {vm}"));
            }
            text.push('\n');
        }
        for item in &self.items {
            match item {
                TraceItem::Single(request) => {
                    text.push_str(&request.render());
                    text.push('\n');
                }
                TraceItem::Batch(requests) => {
                    text.push_str(&format!("batch {}\n", requests.len()));
                    for request in requests {
                        text.push_str(&request.render());
                        text.push('\n');
                    }
                }
            }
        }
        text
    }

    /// Parses the text form. Comment (`#`) and blank lines are
    /// ignored; `batch n` consumes the next `n` arrival lines; a
    /// `hosts n` directive (at most one, before any request) sets the
    /// fleet size; a `crit <vm> ...` directive (at most one, before
    /// any request, strictly increasing ids) marks the HI VMs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input
    /// — including duplicate or misplaced directives and unknown
    /// keywords, which are never silently tolerated.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut items = Vec::new();
        let mut hosts: Option<usize> = None;
        let mut hi_vms: Option<Vec<usize>> = None;
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        while let Some((number, line)) = lines.next() {
            let mut fields = line.split_whitespace();
            let keyword = fields.next().expect("non-empty line has a field");
            if keyword == "hosts" {
                if !items.is_empty() {
                    return Err(format!(
                        "line {number}: hosts directive must precede all requests"
                    ));
                }
                if hosts.is_some() {
                    return Err(format!("line {number}: duplicate hosts directive"));
                }
                let n: usize = parse_field(fields.next(), "host count")
                    .map_err(|e| format!("line {number}: {e}"))?;
                if n == 0 {
                    return Err(format!("line {number}: host count must be at least 1"));
                }
                if fields.next().is_some() {
                    return Err(format!("line {number}: trailing fields"));
                }
                hosts = Some(n);
            } else if keyword == "crit" {
                if !items.is_empty() {
                    return Err(format!(
                        "line {number}: crit directive must precede all requests"
                    ));
                }
                if hi_vms.is_some() {
                    return Err(format!("line {number}: duplicate crit directive"));
                }
                let mut ids = Vec::new();
                for field in fields {
                    let vm: usize = field
                        .parse()
                        .map_err(|_| format!("line {number}: malformed vm id '{field}'"))?;
                    if ids.last().is_some_and(|&last| last >= vm) {
                        return Err(format!(
                            "line {number}: crit vm ids must be strictly increasing"
                        ));
                    }
                    ids.push(vm);
                }
                if ids.is_empty() {
                    return Err(format!("line {number}: crit directive names no vm"));
                }
                hi_vms = Some(ids);
            } else if keyword == "batch" {
                let arity: usize = parse_field(fields.next(), "batch arity")
                    .map_err(|e| format!("line {number}: {e}"))?;
                let mut batch = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let (member_number, member_line) = lines
                        .next()
                        .ok_or_else(|| format!("line {number}: batch truncated"))?;
                    let request = parse_request(member_line, member_number)?;
                    if !matches!(request, TraceRequest::Arrive { .. }) {
                        return Err(format!(
                            "line {member_number}: only arrivals may appear in a batch"
                        ));
                    }
                    batch.push(request);
                }
                items.push(TraceItem::Batch(batch));
            } else {
                items.push(TraceItem::Single(parse_request(line, number)?));
            }
        }
        Ok(AdmissionTrace {
            items,
            hosts: hosts.unwrap_or(1),
            hi_vms: hi_vms.unwrap_or_default(),
        })
    }
}

fn parse_request(line: &str, number: usize) -> Result<TraceRequest, String> {
    parse_request_bare(line).map_err(|e| format!("line {number}: {e}"))
}

fn parse_request_bare(line: &str) -> Result<TraceRequest, String> {
    let mut fields = line.split_whitespace();
    let keyword = fields.next().ok_or_else(|| "empty request".to_string())?;
    let request = match keyword {
        "arrive" | "mode" => {
            let vm = parse_field(fields.next(), "vm id")?;
            let utilization: f64 = parse_field(fields.next(), "utilization")?;
            // Rust's f64 parser accepts "NaN"/"inf"; reject them by
            // name instead of relying on range-comparison fall-through
            // (NaN fails any comparison, but the resulting "out of
            // range" message would misname the defect).
            if !utilization.is_finite() {
                return Err(format!("non-finite utilization '{utilization}'"));
            }
            if !(0.0..=1000.0).contains(&utilization) {
                return Err(format!("utilization {utilization} out of range"));
            }
            let utilization_milli = (utilization * 1000.0).round() as u32;
            let seed = parse_field(fields.next(), "seed")?;
            if keyword == "arrive" {
                TraceRequest::Arrive {
                    vm,
                    utilization_milli,
                    seed,
                }
            } else {
                TraceRequest::Mode {
                    vm,
                    utilization_milli,
                    seed,
                }
            }
        }
        "depart" => TraceRequest::Depart {
            vm: parse_field(fields.next(), "vm id")?,
        },
        other => return Err(format!("unknown request '{other}'")),
    };
    if fields.next().is_some() {
        return Err("trailing fields".to_string());
    }
    Ok(request)
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, String> {
    field
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("malformed {what}"))
}

/// Parameters of the fleet-churn trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Total requests to emit (batch members count individually).
    pub requests: usize,
    /// Generator seed (also seeds nothing else — per-VM taskset seeds
    /// are drawn from this stream and stored in the trace).
    pub seed: u64,
    /// Per-VM target utilization range, milli-units, inclusive.
    pub utilization_milli: (u32, u32),
    /// Live-set bounds: below `lo` only arrivals are emitted, at or
    /// above `hi` only departures — the churn regime in between.
    pub live_range: (usize, usize),
    /// Fraction of in-regime requests that are mode changes.
    pub mode_fraction: f64,
    /// Fraction of in-regime requests that open a concurrent batch.
    pub batch_fraction: f64,
    /// Maximum batch arity.
    pub max_batch: usize,
    /// Fraction of in-regime requests that *retry* a live VM's
    /// original arrival line verbatim (same id, utilization, and
    /// taskset seed). Retries of admitted VMs hit the cheap
    /// duplicate-id rejection; retries of rejected VMs against an
    /// unchanged state are exactly what the engine's rejection memo
    /// short-circuits.
    pub retry_fraction: f64,
    /// The fleet size stamped into the generated trace.
    pub hosts: usize,
    /// Fraction of fresh arrivals marked HI-criticality (the `crit`
    /// directive). Zero draws nothing from the generator stream, so
    /// all-LO traces keep their historical bytes.
    pub hi_fraction: f64,
}

impl TraceSpec {
    /// The default fleet-churn shape for `requests` requests: small
    /// VMs (0.060–0.280), live set bounded to 6..14, 10% mode
    /// changes, 8% batches of up to 3, no retries, one host.
    pub fn new(requests: usize, seed: u64) -> Self {
        TraceSpec {
            requests,
            seed,
            utilization_milli: (60, 280),
            live_range: (6, 14),
            mode_fraction: 0.10,
            batch_fraction: 0.08,
            max_batch: 3,
            retry_fraction: 0.0,
            hosts: 1,
            hi_fraction: 0.0,
        }
    }

    /// The rejection-heavy preset: mid-size VMs (0.300–0.500) arriving
    /// far past fleet capacity with essentially no departures
    /// (live set bounded to 50..400), no mode changes or batches, and
    /// 90% retries. Once the fleet saturates, every fresh arrival runs
    /// the expensive failing search and every retry repeats it — the
    /// regime the rejection memo is built for.
    pub fn rejection_heavy(requests: usize, seed: u64, hosts: usize) -> Self {
        TraceSpec {
            requests,
            seed,
            utilization_milli: (300, 500),
            live_range: (50, 400),
            mode_fraction: 0.0,
            batch_fraction: 0.0,
            max_batch: 2,
            retry_fraction: 0.90,
            hosts,
            hi_fraction: 0.0,
        }
    }

    /// Replaces the fleet size stamped into the generated trace.
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Replaces the HI-criticality arrival fraction.
    pub fn with_hi_fraction(mut self, hi_fraction: f64) -> Self {
        self.hi_fraction = hi_fraction;
        self
    }
}

/// Generates a seeded fleet-churn trace: VM ids are never reused,
/// departures, mode changes, and retries target VMs the generator has
/// arrived and not yet departed (whether or not the engine admitted
/// them — departures of rejected VMs exercise the unknown-VM path,
/// retries of rejected VMs exercise the rejection memo).
pub fn generate(spec: &TraceSpec) -> AdmissionTrace {
    let mut rng = DetRng::seed_from_u64(spec.seed);
    let (lo, hi) = spec.utilization_milli;
    let (live_lo, live_hi) = spec.live_range;
    let mut items = Vec::new();
    // Live VMs with their original arrival lines (re-emitted verbatim
    // by retries).
    let mut live: Vec<(usize, TraceRequest)> = Vec::new();
    let mut next_vm = 1usize;
    let mut emitted = 0usize;
    let mut hi_vms: Vec<usize> = Vec::new();
    let hi_fraction = spec.hi_fraction;
    let arrival = |rng: &mut DetRng,
                   live: &mut Vec<(usize, TraceRequest)>,
                   next_vm: &mut usize,
                   hi_vms: &mut Vec<usize>| {
        let vm = *next_vm;
        *next_vm += 1;
        let request = TraceRequest::Arrive {
            vm,
            utilization_milli: rng.gen_range(lo as usize..hi as usize + 1) as u32,
            seed: rng.gen_range(0u64..1 << 48),
        };
        // Guarded so an all-LO spec draws nothing here — the generator
        // stream (and thus every historical trace byte) is unchanged.
        if hi_fraction > 0.0 && rng.gen_f64() < hi_fraction {
            hi_vms.push(vm);
        }
        live.push((vm, request));
        request
    };
    while emitted < spec.requests {
        let must_arrive = live.len() < live_lo;
        let must_depart = live.len() >= live_hi;
        let roll = rng.gen_f64();
        if !must_arrive && !must_depart && roll < spec.mode_fraction {
            let vm = live[rng.gen_range(0usize..live.len())].0;
            items.push(TraceItem::Single(TraceRequest::Mode {
                vm,
                utilization_milli: rng.gen_range(lo as usize..hi as usize + 1) as u32,
                seed: rng.gen_range(0u64..1 << 48),
            }));
            emitted += 1;
        } else if !must_depart && roll < spec.mode_fraction + spec.batch_fraction {
            let arity = rng
                .gen_range(2usize..spec.max_batch.max(2) + 1)
                .min(spec.requests - emitted);
            if arity < 2 {
                items.push(TraceItem::Single(arrival(&mut rng, &mut live, &mut next_vm, &mut hi_vms)));
                emitted += 1;
            } else {
                let batch: Vec<TraceRequest> = (0..arity)
                    .map(|_| arrival(&mut rng, &mut live, &mut next_vm, &mut hi_vms))
                    .collect();
                emitted += batch.len();
                items.push(TraceItem::Batch(batch));
            }
        } else if !must_arrive
            && !must_depart
            && spec.retry_fraction > 0.0
            && roll < spec.mode_fraction + spec.batch_fraction + spec.retry_fraction
        {
            // Verbatim re-submission of a live VM's arrival line.
            let request = live[rng.gen_range(0usize..live.len())].1;
            items.push(TraceItem::Single(request));
            emitted += 1;
        } else if must_depart || (!must_arrive && rng.gen_f64() < 0.5) {
            let position = rng.gen_range(0usize..live.len());
            let (vm, _) = live.swap_remove(position);
            items.push(TraceItem::Single(TraceRequest::Depart { vm }));
            emitted += 1;
        } else {
            items.push(TraceItem::Single(arrival(&mut rng, &mut live, &mut next_vm, &mut hi_vms)));
            emitted += 1;
        }
    }
    // Fresh arrivals are drawn with monotonically increasing VM ids,
    // so the HI set is already in the parser's canonical strictly
    // increasing order.
    AdmissionTrace {
        items,
        hosts: spec.hosts.max(1),
        hi_vms,
    }
}

/// Materializes a trace request into an engine request: the VM's
/// taskset is generated from `(utilization, seed)` alone, with task
/// ids offset into a per-VM range so ids stay globally unique across
/// the whole stream.
pub fn materialize(request: &TraceRequest, space: ResourceSpace) -> AdmissionRequest {
    match *request {
        TraceRequest::Arrive {
            vm,
            utilization_milli,
            seed,
        } => AdmissionRequest::Arrival(trace_vm(vm, utilization_milli, seed, space)),
        TraceRequest::Depart { vm } => AdmissionRequest::Departure(VmId(vm)),
        TraceRequest::Mode {
            vm,
            utilization_milli,
            seed,
        } => AdmissionRequest::ModeChange(trace_vm(vm, utilization_milli, seed, space)),
    }
}

/// Task-id range reserved per VM (ids are `vm * TASK_ID_STRIDE + i`).
const TASK_ID_STRIDE: usize = 100_000;

fn trace_vm(vm: usize, utilization_milli: u32, seed: u64, space: ResourceSpace) -> VmSpec {
    let config = TasksetConfig::new(utilization_milli as f64 / 1000.0, UtilizationDist::Uniform);
    let mut generator = TasksetGenerator::new(space, config, seed);
    let tasks: TaskSet = generator
        .generate()
        .iter()
        .enumerate()
        .map(|(i, task)| {
            Task::new(
                TaskId(vm * TASK_ID_STRIDE + i),
                task.period(),
                task.wcet_surface().clone(),
            )
            .expect("re-identified task keeps its validity")
        })
        .collect();
    VmSpec::new(VmId(vm), tasks).expect("generated taskset is non-empty")
}

/// Replays `trace` into `engine` (appending to its decision log):
/// singles via [`AdmissionEngine::submit`], batches via
/// [`AdmissionEngine::submit_batch`].
pub fn replay(engine: &mut AdmissionEngine, trace: &AdmissionTrace) {
    let space = engine.platform().resources();
    for item in trace.items() {
        match item {
            TraceItem::Single(request) => {
                engine.submit(materialize(request, space));
            }
            TraceItem::Batch(requests) => {
                engine.submit_batch(requests.iter().map(|r| materialize(r, space)).collect());
            }
        }
    }
}

/// Materializes a whole trace into fleet work items (the
/// pre-materialized form both [`replay_fleet`] and
/// [`AdmissionFleet::replay_parallel`] consume).
pub fn fleet_items(trace: &AdmissionTrace, space: ResourceSpace) -> Vec<FleetWorkItem> {
    trace
        .items()
        .iter()
        .map(|item| match item {
            TraceItem::Single(request) => FleetWorkItem::Single(materialize(request, space)),
            TraceItem::Batch(requests) => {
                FleetWorkItem::Batch(requests.iter().map(|r| materialize(r, space)).collect())
            }
        })
        .collect()
}

/// Replays `trace` serially into `fleet` (appending to its merged
/// decision log).
pub fn replay_fleet(fleet: &mut AdmissionFleet, trace: &AdmissionTrace) {
    let space = fleet.platform().resources();
    let items = fleet_items(trace, space);
    fleet.replay(&items);
}

/// Replays `trace` into `engine` exactly like [`replay`], additionally
/// appending one write-ahead [`DecisionJournal`] record per decision:
/// the request's canonical trace line paired with the engine's
/// byte-stable decision line (batch records keep requests in
/// submission order and decisions in the engine's canonical order).
/// Persisting the rendered journal lets [`recover`] reconstruct a
/// bit-identical replacement engine after a crash.
pub fn replay_journaled(engine: &mut AdmissionEngine, trace: &AdmissionTrace) -> DecisionJournal {
    let space = engine.platform().resources();
    let mut journal = DecisionJournal::new();
    for item in trace.items() {
        match item {
            TraceItem::Single(request) => {
                let decision = engine.submit(materialize(request, space));
                journal.append_single(request.render(), decision.log_line());
            }
            TraceItem::Batch(requests) => {
                let lines: Vec<String> = requests.iter().map(|r| r.render()).collect();
                let decisions = engine
                    .submit_batch(requests.iter().map(|r| materialize(r, space)).collect())
                    .iter()
                    .map(|d| d.log_line())
                    .collect();
                journal.append_batch(lines, decisions);
            }
        }
    }
    journal
}

/// Reconstructs a replacement [`AdmissionEngine`] from a journal
/// written by [`replay_journaled`] (or any journal whose request lines
/// are canonical trace request lines): every journaled request is
/// re-parsed, re-materialized, and replayed into a fresh engine with
/// `config`, and each regenerated decision line is byte-compared
/// against the journaled one — corruption or configuration drift that
/// perturbs any decision byte surfaces as a typed
/// [`RecoveryError::Divergence`] instead of silently diverging state.
pub fn recover(
    platform: Platform,
    config: AdmissionConfig,
    journal: &DecisionJournal,
) -> Result<AdmissionEngine, RecoveryError> {
    let space = platform.resources();
    recover_engine(platform, config, journal, |line| {
        TraceRequest::parse_line(line).map(|request| materialize(&request, space))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_alloc::{AdmissionConfig, FleetConfig};
    use vc2m_model::Platform;

    #[test]
    fn generate_is_deterministic_and_sized() {
        let spec = TraceSpec::new(120, 9);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 120);
    }

    #[test]
    fn generated_trace_exercises_every_request_kind() {
        let trace = generate(&TraceSpec::new(300, 4));
        let mut arrivals = 0;
        let mut departures = 0;
        let mut modes = 0;
        let mut batches = 0;
        for item in trace.items() {
            match item {
                TraceItem::Batch(b) => {
                    batches += 1;
                    arrivals += b.len();
                }
                TraceItem::Single(TraceRequest::Arrive { .. }) => arrivals += 1,
                TraceItem::Single(TraceRequest::Depart { .. }) => departures += 1,
                TraceItem::Single(TraceRequest::Mode { .. }) => modes += 1,
            }
        }
        assert!(arrivals > 0 && departures > 0 && modes > 0 && batches > 0);
    }

    #[test]
    fn render_parse_round_trips() {
        let trace = generate(&TraceSpec::new(150, 33));
        let text = trace.render();
        let parsed = AdmissionTrace::parse(&text).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.render(), text);
        assert!(text.starts_with(TRACE_HEADER));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(AdmissionTrace::parse("arrive").unwrap_err().contains("missing"));
        assert!(AdmissionTrace::parse("arrive x 0.1 3")
            .unwrap_err()
            .contains("malformed"));
        assert!(AdmissionTrace::parse("frob 1").unwrap_err().contains("unknown"));
        assert!(AdmissionTrace::parse("batch 2\narrive 1 0.1 3")
            .unwrap_err()
            .contains("truncated"));
        assert!(AdmissionTrace::parse("batch 1\ndepart 1")
            .unwrap_err()
            .contains("only arrivals"));
        assert!(AdmissionTrace::parse("arrive 1 0.1 3 9")
            .unwrap_err()
            .contains("trailing"));
        // Non-finite utilizations are rejected by name, with the line
        // number, for both arrivals and mode changes.
        let err = AdmissionTrace::parse("arrive 1 NaN 3").unwrap_err();
        assert!(err.contains("line 1") && err.contains("non-finite"), "{err}");
        let err = AdmissionTrace::parse("depart 2\nmode 1 inf 3").unwrap_err();
        assert!(err.contains("line 2") && err.contains("non-finite"), "{err}");
        let err = AdmissionTrace::parse("arrive 1 -inf 3").unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        // Host-dimension directive errors carry line numbers too.
        let err = AdmissionTrace::parse("hosts 0").unwrap_err();
        assert!(err.contains("line 1") && err.contains("at least 1"), "{err}");
        assert!(AdmissionTrace::parse("hosts x")
            .unwrap_err()
            .contains("malformed host count"));
        assert!(AdmissionTrace::parse("hosts")
            .unwrap_err()
            .contains("missing host count"));
        assert!(AdmissionTrace::parse("hosts 2 3")
            .unwrap_err()
            .contains("trailing"));
        assert!(AdmissionTrace::parse("hosts 2\nhosts 3")
            .unwrap_err()
            .contains("duplicate"));
        let err = AdmissionTrace::parse("depart 1\nhosts 2").unwrap_err();
        assert!(err.contains("line 2") && err.contains("precede"), "{err}");
    }

    #[test]
    fn hosts_directive_round_trips_and_defaults_to_one() {
        let plain = AdmissionTrace::parse("arrive 1 0.100 3").unwrap();
        assert_eq!(plain.hosts(), 1);
        assert!(!plain.render().contains("hosts"));
        let fleet = generate(&TraceSpec::rejection_heavy(40, 7, 4));
        assert_eq!(fleet.hosts(), 4);
        let text = fleet.render();
        assert!(text.contains("\nhosts 4\n"), "{}", &text[..80]);
        let parsed = AdmissionTrace::parse(&text).unwrap();
        assert_eq!(parsed, fleet);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn retries_re_emit_live_arrival_lines_verbatim() {
        let trace = generate(&TraceSpec::rejection_heavy(200, 11, 2));
        assert_eq!(trace.len(), 200);
        let mut first_arrival: std::collections::HashMap<usize, TraceRequest> =
            std::collections::HashMap::new();
        let mut retries = 0usize;
        for item in trace.items() {
            if let TraceItem::Single(request @ TraceRequest::Arrive { vm, .. }) = item {
                match first_arrival.get(vm) {
                    Some(original) => {
                        assert_eq!(request, original, "retry must be verbatim");
                        retries += 1;
                    }
                    None => {
                        first_arrival.insert(*vm, *request);
                    }
                }
            }
        }
        assert!(retries > 50, "only {retries} retries in 200 requests");
        // Determinism: same spec, same bytes.
        assert_eq!(
            generate(&TraceSpec::rejection_heavy(200, 11, 2)).render(),
            trace.render()
        );
    }

    #[test]
    fn fleet_replay_matches_engine_on_one_host() {
        let trace = generate(&TraceSpec::new(60, 17));
        let platform = Platform::platform_a();
        let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(42));
        replay(&mut engine, &trace);
        let mut fleet = AdmissionFleet::new(platform, FleetConfig::new(1, 42));
        replay_fleet(&mut fleet, &trace);
        assert_eq!(fleet.log_text(), engine.log_text());
        assert_eq!(&fleet.aggregate_stats(), engine.stats());
    }

    #[test]
    fn materialized_vms_have_disjoint_task_ids() {
        let space = Platform::platform_a().resources();
        let a = trace_vm(1, 200, 7, space);
        let b = trace_vm(2, 200, 7, space);
        let ids_a: Vec<usize> = a.tasks().iter().map(|t| t.id().0).collect();
        let ids_b: Vec<usize> = b.tasks().iter().map(|t| t.id().0).collect();
        assert!(ids_a.iter().all(|i| !ids_b.contains(i)));
    }

    #[test]
    fn replay_produces_one_decision_per_request() {
        let trace = generate(&TraceSpec::new(80, 21));
        let mut engine =
            AdmissionEngine::new(Platform::platform_a(), AdmissionConfig::new(42));
        replay(&mut engine, &trace);
        assert_eq!(engine.decisions().len(), trace.len());
        engine.allocation().verify(engine.platform()).unwrap();
    }

    #[test]
    fn crit_directive_round_trips_and_marks_hi_vms() {
        let trace = AdmissionTrace::parse(
            "hosts 2\ncrit 1 4\narrive 1 0.100 3\narrive 2 0.100 4\narrive 4 0.100 5\n",
        )
        .unwrap();
        assert_eq!(trace.hi_vms(), &[1, 4]);
        assert_eq!(trace.criticality_of(1), Criticality::Hi);
        assert_eq!(trace.criticality_of(2), Criticality::Lo);
        assert_eq!(trace.criticality_of(4), Criticality::Hi);
        assert_eq!(trace.criticality_of(99), Criticality::Lo);
        let text = trace.render();
        assert!(text.contains("\ncrit 1 4\n"), "{text}");
        let parsed = AdmissionTrace::parse(&text).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.render(), text);
        // No crit directive ⇒ everyone LO, and none rendered — the
        // historical trace format is unchanged.
        let plain = AdmissionTrace::parse("arrive 1 0.100 3").unwrap();
        assert!(plain.hi_vms().is_empty());
        assert!(!plain.render().contains("crit"));
    }

    #[test]
    fn crit_directive_rejections_carry_line_numbers() {
        let err = AdmissionTrace::parse("crit 1\ncrit 2").unwrap_err();
        assert!(err.contains("line 2") && err.contains("duplicate"), "{err}");
        let err = AdmissionTrace::parse("arrive 1 0.100 3\ncrit 1").unwrap_err();
        assert!(err.contains("line 2") && err.contains("precede"), "{err}");
        let err = AdmissionTrace::parse("crit 1 x").unwrap_err();
        assert!(err.contains("line 1") && err.contains("malformed vm id"), "{err}");
        let err = AdmissionTrace::parse("crit 3 2").unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        let err = AdmissionTrace::parse("crit 2 2").unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        let err = AdmissionTrace::parse("crit").unwrap_err();
        assert!(err.contains("names no vm"), "{err}");
    }

    #[test]
    fn hi_fraction_marks_vms_deterministically() {
        let spec = TraceSpec::new(120, 9).with_hi_fraction(0.4);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert!(!a.hi_vms().is_empty(), "0.4 of 120 requests draws some HI");
        assert!(
            a.hi_vms().windows(2).all(|w| w[0] < w[1]),
            "hi set is strictly increasing"
        );
        assert!(a.render().contains("\ncrit "), "{}", &a.render()[..120]);
        // The hi draw is gated on the fraction, so a zero-fraction
        // spec consumes no extra randomness: byte-identical to the
        // plain spec (this is what keeps committed traces stable).
        assert_eq!(
            generate(&TraceSpec::new(120, 9).with_hi_fraction(0.0)).render(),
            generate(&TraceSpec::new(120, 9)).render(),
        );
    }

    #[test]
    fn journal_round_trips_and_recovers_the_exact_engine() {
        let trace = generate(&TraceSpec::new(60, 13));
        let platform = Platform::platform_a();
        let config = AdmissionConfig::new(42);
        let mut engine = AdmissionEngine::new(platform, config);
        let journal = replay_journaled(&mut engine, &trace);
        assert_eq!(journal.decisions(), trace.len());
        // The persisted text form round-trips.
        let text = journal.render();
        let parsed = DecisionJournal::parse(&text).unwrap();
        assert_eq!(parsed, journal);
        // A replacement engine recovered from the journal is in the
        // exact state of the one that wrote it.
        let recovered = recover(platform, config, &parsed).unwrap();
        assert_eq!(recovered.log_text(), engine.log_text());
        assert_eq!(recovered.stats(), engine.stats());
        assert_eq!(recovered.allocation(), engine.allocation());
    }
}
