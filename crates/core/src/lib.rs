//! # vC²M — holistic multi-resource allocation for multicore real-time
//! virtualization
//!
//! A from-scratch Rust reproduction of the DAC 2019 paper by Xu,
//! Gifford and Phan. vC²M jointly allocates **CPU time, shared cache
//! partitions and memory bandwidth** to the virtual CPUs of real-time
//! virtual machines, removing the *abstraction overhead* of classical
//! compositional analysis and isolating concurrent tasks from each
//! other's cache and memory-bus interference.
//!
//! This crate is the facade over the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`model`] | tasks, VCPUs, VMs, platforms, WCET surfaces |
//! | [`analysis`] | flattening (Thm 1), overhead-free CSA (Thm 2), periodic resource model |
//! | [`alloc`] | k-means, VM-level and hypervisor-level allocation, the five evaluated solutions |
//! | [`workload`] | PARSEC-style benchmark profiles and random taskset generation |
//! | [`hypervisor`] | the discrete-event hypervisor simulator (RTDS-style scheduling, vCAT, BW regulation) |
//! | [`cat`], [`membw`], [`sched`], [`simcore`] | the underlying substrates |
//! | [`rng`] | the in-tree deterministic RNG and seeded case harness |
//! | [`sweep`] | the schedulability-experiment engine behind Figures 2–4 |
//!
//! # Quickstart
//!
//! ```
//! use vc2m::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 4-core platform with 20 cache and 20 bandwidth partitions.
//! let platform = Platform::platform_a();
//!
//! // A random workload at reference utilization 1.0.
//! let config = TasksetConfig::new(1.0, UtilizationDist::Uniform);
//! let mut generator = TasksetGenerator::new(platform.resources(), config, 42);
//! let tasks = generator.generate();
//! let vms = vec![VmSpec::new(VmId(0), tasks.clone())?];
//!
//! // Allocate with vC²M (flattening) and validate by simulation.
//! if let Some(allocation) = Solution::HeuristicFlattening
//!     .allocate(&vms, &platform, 42)
//!     .into_allocation()
//! {
//!     let report = HypervisorSim::new(&platform, &allocation, &tasks, SimConfig::default())?
//!         .run()?;
//!     assert!(report.all_deadlines_met());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod sweep;

pub use vc2m_alloc as alloc;
pub use vc2m_analysis as analysis;
pub use vc2m_cat as cat;
pub use vc2m_hypervisor as hypervisor;
pub use vc2m_membw as membw;
pub use vc2m_model as model;
pub use vc2m_rng as rng;
pub use vc2m_sched as sched;
pub use vc2m_simcore as simcore;
pub use vc2m_workload as workload;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::admission::{AdmissionTrace, TraceItem, TraceRequest, TraceSpec};
    pub use crate::sweep::{utilization_steps, SweepConfig, SweepResults};
    pub use vc2m_alloc::{
        allocate_with_degradation, allocate_with_degradation_prioritized, AdmissionConfig,
        AdmissionDecision, AdmissionEngine, AdmissionFleet, AdmissionPath, AdmissionRequest,
        AdmissionStats, AdmissionVerdict, AllocationOutcome, Criticality, DecisionJournal,
        DegradationOutcome, DegradationPolicy, DegradationReport, EvacuationExhausted,
        EvacuationPolicy, FleetConfig, FleetDecision, FleetFault, FleetFaultPlan, FleetFaultSpec,
        FleetRouter, FleetScenario, FleetStats, FleetWorkItem, JournalRecord, RecoveryError,
        RequestKind, ScheduledFleetFault, Solution, SystemAllocation,
    };
    pub use vc2m_analysis::{AnalysisCache, CacheStats};
    pub use vc2m_hypervisor::{
        Fault, FaultKind, FaultPlan, FaultPlanSpec, FaultTargets, HypervisorSim, IsolationMode,
        SimConfig, SimError, SimReport,
    };
    pub use vc2m_model::{
        Alloc, Platform, ResourceSpace, Task, TaskId, TaskSet, VcpuId, VcpuSpec, VmId, VmSpec,
        WcetSurface,
    };
    pub use vc2m_workload::{ParsecBenchmark, TasksetConfig, TasksetGenerator, UtilizationDist};
}
