//! Fleet conformance suite: the sharded [`AdmissionFleet`] against its
//! three ground truths.
//!
//! 1. A one-host fleet IS the plain engine — merged decision log
//!    byte-for-byte, allocation, and counters.
//! 2. Parallel replay IS serial replay at every thread count — the
//!    routing pass fixes each decision's host and global ticket before
//!    any engine runs, so the merged log cannot depend on scheduling.
//! 3. The rejection memo is an invisible cache — memo-on and memo-off
//!    produce bit-identical decision logs on the rejection-heavy
//!    preset the memo exists for (only the `memo_*` counters differ).
//!
//! Plus the seeded routing property: shard routing is a pure function
//! of the canonical batch order, so permuting a batch's member order
//! never changes the merged log.

use vc2m::admission::{fleet_items, generate, replay, replay_fleet, TraceItem, TraceSpec};
use vc2m::prelude::*;
use vc2m_rng::cases::check;
use vc2m_rng::Rng;

const SEED: u64 = 42;

fn fleet(platform: Platform, hosts: usize) -> AdmissionFleet {
    AdmissionFleet::new(platform, FleetConfig::new(hosts, SEED))
}

/// 1-host fleet == plain engine: byte-identical log, equal final
/// allocation and counters, over a churn trace exercising every
/// request kind (arrivals, departures, mode changes, batches).
#[test]
fn one_host_fleet_equals_plain_engine_byte_for_byte() {
    let platform = Platform::platform_a();
    let trace = generate(&TraceSpec::new(150, 7));
    let mut engine = AdmissionEngine::new(platform, AdmissionConfig::new(SEED));
    replay(&mut engine, &trace);
    let mut one = fleet(platform, 1);
    replay_fleet(&mut one, &trace);
    assert_eq!(one.log_text(), engine.log_text());
    assert_eq!(one.engines()[0].allocation(), engine.allocation());
    assert_eq!(&one.aggregate_stats(), engine.stats());
}

/// N-host parallel == N-host serial at 1, 2, and 8 threads: merged log
/// bytes, per-host allocations, aggregate counters, and router loads.
#[test]
fn parallel_replay_is_thread_count_invariant() {
    let platform = Platform::platform_a();
    let config = FleetConfig::new(4, SEED);
    let trace = generate(&TraceSpec::new(150, 7).with_hosts(4));
    let items = fleet_items(&trace, platform.resources());
    let mut serial = AdmissionFleet::new(platform, config);
    serial.replay(&items);
    for threads in [1, 2, 8] {
        let parallel = AdmissionFleet::replay_parallel(platform, config, &items, threads);
        assert_eq!(
            parallel.log_text(),
            serial.log_text(),
            "merged log diverged at {threads} threads"
        );
        assert_eq!(parallel.aggregate_stats(), serial.aggregate_stats());
        assert_eq!(parallel.router().loads(), serial.router().loads());
        for (host, (p, s)) in parallel.engines().iter().zip(serial.engines()).enumerate() {
            assert_eq!(p.allocation(), s.allocation(), "host {host} diverged");
        }
    }
}

/// Memo-on == memo-off, bit for bit, on the rejection-heavy preset —
/// and the memo actually fires there (otherwise this test proves
/// nothing about it).
#[test]
fn memo_is_invisible_on_rejection_heavy_trace() {
    let platform = Platform::platform_a();
    let trace = generate(&TraceSpec::rejection_heavy(120, 13, 2));
    let items = fleet_items(&trace, platform.resources());
    let run = |engine_config: AdmissionConfig| {
        let mut f = AdmissionFleet::new(
            platform,
            FleetConfig::new(trace.hosts(), SEED).with_engine(engine_config),
        );
        f.replay(&items);
        f
    };
    let on = run(AdmissionConfig::new(SEED));
    let off = run(AdmissionConfig::new(SEED).without_memo());
    let on_stats = on.aggregate_stats();
    let off_stats = off.aggregate_stats();
    assert!(
        on_stats.memo_hits > 0,
        "rejection-heavy preset never hit the memo"
    );
    assert_eq!(off_stats.memo_hits, 0);
    assert_eq!(on.log_text(), off.log_text());
    for (p, s) in on.engines().iter().zip(off.engines()) {
        assert_eq!(p.allocation(), s.allocation());
    }
    // Only the memo_* counters may differ.
    let normalized = |mut stats: AdmissionStats| {
        stats.memo_hits = 0;
        stats.memo_inserts = 0;
        stats.memo_invalidations = 0;
        // A memo hit skips the placement attempt and repack its miss
        // would have run, so the work counters legitimately shrink.
        stats.repack_attempts = 0;
        stats.core_upgrades = 0;
        stats
    };
    assert_eq!(normalized(on_stats), normalized(off_stats));
}

/// Seeded property: shard routing is deterministic under batch
/// permutation. Arrivals are routed in canonical order regardless of
/// submission order, so shuffling a batch's members never changes the
/// merged log or any host's final state.
#[test]
fn routing_is_deterministic_under_batch_permutation() {
    let platform = Platform::platform_a();
    let trace = generate(&TraceSpec::new(60, 23).with_hosts(3));
    let baseline_items = fleet_items(&trace, platform.resources());
    let mut baseline = fleet(platform, 3);
    baseline.replay(&baseline_items);
    let baseline_log = baseline.log_text();
    check(12, |rng| {
        // Fisher–Yates-shuffle every batch's member order.
        let shuffled: Vec<TraceItem> = trace
            .items()
            .iter()
            .map(|item| match item {
                TraceItem::Batch(members) => {
                    let mut members = members.clone();
                    for i in (1..members.len()).rev() {
                        members.swap(i, rng.gen_range(0usize..i + 1));
                    }
                    TraceItem::Batch(members)
                }
                single => single.clone(),
            })
            .collect();
        let shuffled = AdmissionTrace::from_items(shuffled).with_hosts(3);
        let items = fleet_items(&shuffled, platform.resources());
        let mut f = fleet(platform, 3);
        f.replay(&items);
        assert_eq!(f.log_text(), baseline_log);
        for (a, b) in f.engines().iter().zip(baseline.engines()) {
            assert_eq!(a.allocation(), b.allocation());
        }
    });
}
