//! Chaos and recovery conformance: fault-armed fleets and journaled
//! engines against their ground truths.
//!
//! 1. Fault-armed parallel replay IS fault-armed serial replay at
//!    every thread count — faults, evacuations, and retries are all
//!    decided from router bookkeeping during the routing pass, so the
//!    merged log (including `evac` lines), the counters, the alive
//!    set, and the exhaustion records cannot depend on scheduling.
//! 2. A fault plan is a pure function of `(seed, hosts, spec)` — the
//!    same inputs replay the same chaos, byte for byte.
//! 3. Survivors are isolated: until the first fault fires, an armed
//!    replay is byte-identical to the fault-free one, and a crashed
//!    host serves nothing afterwards.
//! 4. A journaled engine recovers bit-identically at EVERY journal
//!    prefix: recover the prefix, re-drive the tail, and the decision
//!    log, allocation, and counters equal the never-crashed engine's.

use vc2m::admission::{
    fleet_items, generate, materialize, recover, replay_journaled, TraceRequest, TraceSpec,
};
use vc2m::prelude::*;

const SEED: u64 = 42;

fn chaos_scenario(trace_seed: u64) -> (Vec<FleetWorkItem>, FleetScenario, Platform, FleetConfig) {
    let platform = Platform::platform_a();
    let trace = generate(
        &TraceSpec::rejection_heavy(120, trace_seed, 4)
            .with_hi_fraction(0.3),
    );
    let items = fleet_items(&trace, platform.resources());
    let plan = FleetFaultPlan::generate(
        trace_seed ^ 0x5eed,
        4,
        &FleetFaultSpec::new(4, items.len() as u64 + 8),
    );
    let scenario = FleetScenario::new(plan, trace.hi_vms().to_vec());
    (items, scenario, platform, FleetConfig::new(4, SEED))
}

/// Fault-armed parallel == fault-armed serial at 1, 2, and 8 threads,
/// across three generated chaos scenarios: merged log bytes (with
/// `evac` markers), per-host allocations, aggregate and fleet
/// counters, router loads, the alive set, and exhaustion records.
#[test]
fn fault_armed_parallel_replay_is_thread_count_invariant() {
    let mut total_faults = 0;
    let mut total_evacuated = 0;
    for trace_seed in [3, 9, 17] {
        let (items, scenario, platform, config) = chaos_scenario(trace_seed);
        let mut serial = AdmissionFleet::new(platform, config);
        serial.arm(scenario.clone()).unwrap();
        serial.replay(&items);
        total_faults += serial.router().stats().faults_injected;
        total_evacuated += serial.router().stats().evacuated_vms;
        for threads in [1, 2, 8] {
            let parallel = AdmissionFleet::replay_parallel_armed(
                platform,
                config,
                scenario.clone(),
                &items,
                threads,
            )
            .unwrap();
            assert_eq!(
                parallel.log_text(),
                serial.log_text(),
                "merged chaos log diverged at {threads} threads (trace seed {trace_seed})"
            );
            assert_eq!(parallel.aggregate_stats(), serial.aggregate_stats());
            assert_eq!(parallel.router().stats(), serial.router().stats());
            assert_eq!(parallel.router().loads(), serial.router().loads());
            assert_eq!(parallel.router().alive(), serial.router().alive());
            assert_eq!(parallel.evacuation_failures(), serial.evacuation_failures());
            for (host, (p, s)) in parallel.engines().iter().zip(serial.engines()).enumerate() {
                assert_eq!(p.allocation(), s.allocation(), "host {host} diverged");
            }
        }
    }
    assert!(total_faults > 0, "the chaos scenarios never injected a fault");
    assert!(
        total_evacuated > 0,
        "the chaos scenarios never evacuated a VM — the suite proves nothing"
    );
}

/// Same `(trace, fault seed)` ⇒ same chaos, byte for byte: the whole
/// faulted replay — log, counters, exhaustions — regenerates exactly.
#[test]
fn chaos_replay_is_reproducible_from_its_seeds() {
    let run = || {
        let (items, scenario, platform, config) = chaos_scenario(9);
        let mut f = AdmissionFleet::new(platform, config);
        f.arm(scenario).unwrap();
        f.replay(&items);
        f
    };
    let a = run();
    let b = run();
    assert_eq!(a.log_text(), b.log_text());
    assert_eq!(a.router().stats(), b.router().stats());
    assert_eq!(a.evacuation_failures(), b.evacuation_failures());
}

/// Survivor isolation: an armed replay is byte-identical to the
/// fault-free replay up to the first fault's ticket, and a crashed
/// host serves no decision after its crash.
#[test]
fn survivors_are_isolated_from_a_crash() {
    let platform = Platform::platform_a();
    let config = FleetConfig::new(3, SEED);
    let trace = generate(&TraceSpec::new(80, 7).with_hosts(3));
    let items = fleet_items(&trace, platform.resources());
    let crash_item = 30u64;
    let crash_host = 1usize;
    let scenario = FleetScenario::new(
        FleetFaultPlan::new().inject(crash_item, FleetFault::HostCrash { host: crash_host }),
        Vec::new(),
    );
    let mut faultless = AdmissionFleet::new(platform, config);
    faultless.replay(&items);
    let mut armed = AdmissionFleet::new(platform, config);
    armed.arm(scenario).unwrap();
    armed.replay(&items);
    // Tickets consumed by the first `crash_item` work items in the
    // fault-free run — the prefix both replays must share byte for
    // byte, because no fault has fired yet.
    let mut prefix = AdmissionFleet::new(platform, config);
    prefix.replay(&items[..crash_item as usize]);
    let shared = prefix.decisions().len();
    let faultless_text = faultless.log_text();
    let faultless_lines: Vec<&str> = faultless_text.lines().take(shared).collect();
    let armed_text = armed.log_text();
    let armed_lines: Vec<&str> = armed_text.lines().collect();
    assert_eq!(&armed_lines[..shared], &faultless_lines[..]);
    // After the crash, the dead host serves nothing: every decision
    // past the shared prefix belongs to a survivor.
    for d in &armed.decisions()[shared..] {
        assert_ne!(d.host, crash_host, "dead host served ticket {}", d.decision.index);
    }
    assert!(
        armed.engines()[crash_host].working_set().is_empty(),
        "the crashed engine was rebuilt empty and never refilled"
    );
    assert_eq!(armed.router().loads()[crash_host], 0.0);
    assert!(!armed.router().alive()[crash_host]);
}

/// The write-ahead journal pin: for EVERY prefix length (every
/// possible crash point), recovering the prefix and re-driving the
/// tail lands in the exact state of the engine that never crashed —
/// decision log bytes, allocation, and counters.
#[test]
fn recovery_continues_byte_identically_at_every_journal_prefix() {
    let platform = Platform::platform_a();
    let config = AdmissionConfig::new(SEED);
    let space = platform.resources();
    let trace = generate(&TraceSpec::new(60, 29));
    let mut reference = AdmissionEngine::new(platform, config);
    let journal = replay_journaled(&mut reference, &trace);
    assert_eq!(journal.decisions(), trace.len());
    let parse = |line: &str| {
        materialize(
            &TraceRequest::parse_line(line).expect("journaled request line parses"),
            space,
        )
    };
    for crash_point in 0..=journal.len() {
        let mut engine = recover(platform, config, &journal.prefix(crash_point))
            .unwrap_or_else(|e| panic!("recovery failed at prefix {crash_point}: {e}"));
        // Re-drive the tail from the journal's own request lines.
        for record in &journal.records()[crash_point..] {
            match record {
                JournalRecord::Single { request, .. } => {
                    engine.submit(parse(request));
                }
                JournalRecord::Batch { requests, .. } => {
                    engine.submit_batch(requests.iter().map(|r| parse(r)).collect());
                }
            }
        }
        assert_eq!(
            engine.log_text(),
            reference.log_text(),
            "decision log diverged after recovery at prefix {crash_point}"
        );
        assert_eq!(engine.stats(), reference.stats());
        assert_eq!(engine.allocation(), reference.allocation());
    }
}
