//! Differential conformance for the sweep engine's two optimizations:
//! the analysis interface cache and whole-utilization-point (coarse
//! work unit) parallelism.
//!
//! Neither is allowed to change a single result bit. These tests prove
//! it differentially, against the unoptimized configuration as the
//! reference implementation:
//!
//! * per solution, the cached VM-level interface (every VCPU's period
//!   and full budget surface, compared bit for bit) and the final
//!   allocation verdict equal the uncached ones, both with a private
//!   cache and with one cache shared across all five solutions — the
//!   sharing structure the sweep actually uses;
//! * [`run_sweep_parallel`] at 1, 2 and 8 threads reproduces
//!   [`run_sweep`] cell for cell (schedulable and total counts;
//!   runtimes are wall-clock and legitimately differ);
//! * a cached sweep reproduces an uncached sweep cell for cell while
//!   actually hitting the cache;
//! * the aggregated telemetry (cache statistics and kernel counters)
//!   is thread-count independent: every point's cache is reset at the
//!   point boundary, so each point's counter delta is a pure function
//!   of the configuration, however points land on worker threads.

use vc2m::model::{VmId, VmSpec};
use vc2m::prelude::*;
use vc2m::rng::DetRng;
use vc2m::sweep::{run_sweep, run_sweep_parallel, SweepConfig};

/// A sweep configuration small enough for a debug-build test but still
/// covering infeasible, contended and easy utilization points.
fn small_config() -> SweepConfig {
    let mut config = SweepConfig::quick(Platform::platform_a(), UtilizationDist::Uniform);
    config.utilizations = vec![0.4, 1.2, 2.0];
    config.tasksets_per_point = 2;
    config
}

fn generate_vms(utilization: f64, seed: u64) -> Vec<VmSpec> {
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(utilization, UtilizationDist::Uniform),
        seed,
    );
    vec![VmSpec::new(VmId(0), generator.generate()).expect("non-empty taskset")]
}

/// Asserts two VM-level interfaces are bit-identical: same VCPUs, same
/// periods, and budget surfaces equal in their `f64` bits.
fn assert_interfaces_bit_identical(
    reference: &[vc2m::model::VcpuSpec],
    optimized: &[vc2m::model::VcpuSpec],
    context: &str,
) {
    assert_eq!(reference.len(), optimized.len(), "{context}: VCPU count");
    for (r, o) in reference.iter().zip(optimized) {
        assert_eq!(r.id(), o.id(), "{context}: id");
        assert_eq!(r.vm(), o.vm(), "{context}: vm");
        assert_eq!(
            r.period().to_bits(),
            o.period().to_bits(),
            "{context}: period bits of {:?}",
            r.id()
        );
        assert_eq!(r.tasks(), o.tasks(), "{context}: task assignment");
        let rb: Vec<(vc2m::model::Alloc, f64)> = r.budget_surface().iter().collect();
        let ob: Vec<(vc2m::model::Alloc, f64)> = o.budget_surface().iter().collect();
        assert_eq!(rb.len(), ob.len(), "{context}: surface size");
        for ((alloc, a), (_, b)) in rb.iter().zip(&ob) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{context}: budget bits of {:?} at {alloc:?} ({a} vs {b})",
                r.id()
            );
        }
    }
}

#[test]
fn cached_vm_level_interface_is_bit_identical_per_solution() {
    let platform = Platform::platform_a();
    for &(utilization, seed) in &[(0.5, 7u64), (1.0, 42), (1.6, 1234)] {
        let vms = generate_vms(utilization, seed);
        for solution in Solution::ALL {
            let mut rng = DetRng::seed_from_u64(seed);
            let reference = solution.vm_level(&vms, &platform, &mut rng);
            let cache = AnalysisCache::enabled();
            let mut rng = DetRng::seed_from_u64(seed);
            let cached = solution.vm_level_with_cache(&vms, &platform, &cache, &mut rng);
            let context = format!("{solution:?} at u={utilization} seed={seed}");
            match (&reference, &cached) {
                (Ok(r), Ok(c)) => assert_interfaces_bit_identical(r, c, &context),
                (Err(_), Err(_)) => {}
                _ => panic!("{context}: cached and uncached disagree on failure"),
            }
        }
    }
}

#[test]
fn shared_cache_across_solutions_matches_uncached_allocation() {
    let platform = Platform::platform_a();
    for &(utilization, seed) in &[(0.5, 7u64), (1.0, 42), (1.6, 1234)] {
        let vms = generate_vms(utilization, seed);
        // One cache shared across the five solutions, as sweep_unit
        // shares it: earlier solutions' memo entries must not leak
        // wrong answers into later ones.
        let shared = AnalysisCache::enabled();
        for solution in Solution::ALL {
            let reference = solution.allocate(&vms, &platform, seed);
            let cached = solution.allocate_with_cache(&vms, &platform, seed, &shared);
            assert_eq!(
                reference.is_schedulable(),
                cached.is_schedulable(),
                "{solution:?} verdict at u={utilization} seed={seed}"
            );
            assert_eq!(
                reference, cached,
                "{solution:?} allocation at u={utilization} seed={seed}"
            );
        }
        assert!(
            shared.stats().hits > 0,
            "sharing across solutions produced no hits at u={utilization}"
        );
    }
}

/// Cell-for-cell equality of two sweeps: utilizations, schedulable
/// counts and totals (runtime is wall-clock and may differ).
fn assert_sweeps_equal(reference: &vc2m::sweep::SweepResults, other: &vc2m::sweep::SweepResults, context: &str) {
    assert_eq!(reference.solutions(), other.solutions(), "{context}: solutions");
    assert_eq!(reference.rows().len(), other.rows().len(), "{context}: rows");
    for (row, (r, o)) in reference.rows().iter().zip(other.rows()).enumerate() {
        assert_eq!(
            r.utilization.to_bits(),
            o.utilization.to_bits(),
            "{context}: row {row} utilization"
        );
        assert_eq!(r.cells.len(), o.cells.len(), "{context}: row {row} width");
        for (col, (rc, oc)) in r.cells.iter().zip(&o.cells).enumerate() {
            assert_eq!(
                (rc.schedulable, rc.total),
                (oc.schedulable, oc.total),
                "{context}: cell ({row}, {col})"
            );
        }
    }
    // The rendered artifact the figures are built from must also agree.
    assert_eq!(reference.fractions_csv(), other.fractions_csv(), "{context}: csv");
}

#[test]
fn parallel_sweep_matches_serial_at_every_thread_count() {
    let config = small_config();
    let serial = run_sweep(&config);
    for threads in [1, 2, 8] {
        let parallel = run_sweep_parallel(&config, threads, |_, _| {});
        assert_sweeps_equal(&serial, &parallel, &format!("{threads} threads"));
    }
}

#[test]
fn cached_sweep_matches_uncached_sweep() {
    let config = small_config();
    let uncached = run_sweep(&config.clone().with_cache(false));
    let cached = run_sweep(&config.clone().with_cache(true));
    assert_sweeps_equal(&uncached, &cached, "cache");
    assert_eq!(uncached.cache_stats(), CacheStats::default());
    assert!(cached.cache_stats().hits > 0, "cache never hit");
}

#[test]
fn parallel_cached_sweep_matches_serial_uncached() {
    // The full optimized configuration against the fully unoptimized
    // one — the exact comparison the scaling bench enforces at scale.
    let config = small_config();
    let reference = run_sweep(&config.clone().with_cache(false));
    let optimized = run_sweep_parallel(&config.clone().with_cache(true), 4, |_, _| {});
    assert_sweeps_equal(&reference, &optimized, "parallel+cache");
}

#[test]
fn aggregated_telemetry_is_thread_count_independent() {
    // The cache is reset at every utilization-point boundary, so each
    // point's CacheStats/KernelCounters delta depends only on the
    // configuration and the point index — never on which worker thread
    // processed it or on what ran before it on that thread. The
    // order-independent merge then makes the aggregated totals equal
    // across every thread count, including the serial driver.
    let config = small_config().with_cache(true);
    let serial = run_sweep(&config);
    assert!(serial.cache_stats().lookups() > 0, "cache never consulted");
    assert!(serial.kernel_stats().vcpu_builds > 0, "no VCPUs built");
    for threads in [1, 2, 8] {
        let parallel = run_sweep_parallel(&config, threads, |_, _| {});
        assert_eq!(
            serial.cache_stats(),
            parallel.cache_stats(),
            "cache statistics drifted at {threads} threads"
        );
        assert_eq!(
            serial.kernel_stats(),
            parallel.kernel_stats(),
            "kernel counters drifted at {threads} threads"
        );
    }
}
