//! Task-utilization distributions from the paper's evaluation.

use vc2m_rng::Rng;
use std::fmt;

/// The four task-utilization distributions of Section 5.1.
///
/// * `Uniform` — utilization uniform in \[0.1, 0.4\].
/// * The three bimodal variants draw from \[0.1, 0.4\] (light tasks)
///   or \[0.5, 0.9\] (heavy tasks) with heavy-task probabilities of
///   1/9 (light), 3/9 (medium) and 5/9 (heavy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UtilizationDist {
    /// Uniform over \[0.1, 0.4\].
    Uniform,
    /// Bimodal: heavy with probability 1/9.
    BimodalLight,
    /// Bimodal: heavy with probability 3/9.
    BimodalMedium,
    /// Bimodal: heavy with probability 5/9.
    BimodalHeavy,
}

/// Light-task utilization range, shared by all distributions.
const LIGHT: (f64, f64) = (0.1, 0.4);
/// Heavy-task utilization range for the bimodal distributions.
const HEAVY: (f64, f64) = (0.5, 0.9);

impl UtilizationDist {
    /// All four distributions.
    pub const ALL: [UtilizationDist; 4] = [
        UtilizationDist::Uniform,
        UtilizationDist::BimodalLight,
        UtilizationDist::BimodalMedium,
        UtilizationDist::BimodalHeavy,
    ];

    /// Probability that a task is heavy.
    pub fn heavy_probability(self) -> f64 {
        match self {
            UtilizationDist::Uniform => 0.0,
            UtilizationDist::BimodalLight => 1.0 / 9.0,
            UtilizationDist::BimodalMedium => 3.0 / 9.0,
            UtilizationDist::BimodalHeavy => 5.0 / 9.0,
        }
    }

    /// Draws one task utilization.
    pub fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let heavy = rng.gen_f64() < self.heavy_probability();
        let (lo, hi) = if heavy { HEAVY } else { LIGHT };
        rng.gen_range(lo..hi)
    }

    /// The distribution's name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            UtilizationDist::Uniform => "uniform",
            UtilizationDist::BimodalLight => "bimodal-light",
            UtilizationDist::BimodalMedium => "bimodal-medium",
            UtilizationDist::BimodalHeavy => "bimodal-heavy",
        }
    }
}

impl fmt::Display for UtilizationDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_rng::DetRng;

    #[test]
    fn uniform_stays_in_light_range() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = UtilizationDist::Uniform.sample(&mut rng);
            assert!((0.1..0.4).contains(&u), "got {u}");
        }
    }

    #[test]
    fn bimodal_samples_stay_in_union_of_ranges() {
        let mut rng = DetRng::seed_from_u64(2);
        for dist in UtilizationDist::ALL {
            for _ in 0..1000 {
                let u = dist.sample(&mut rng);
                assert!(
                    (0.1..0.4).contains(&u) || (0.5..0.9).contains(&u),
                    "{dist}: got {u}"
                );
            }
        }
    }

    #[test]
    fn heavy_fraction_matches_probability() {
        let mut rng = DetRng::seed_from_u64(3);
        for dist in [
            UtilizationDist::BimodalLight,
            UtilizationDist::BimodalMedium,
            UtilizationDist::BimodalHeavy,
        ] {
            let n = 20_000;
            let heavy = (0..n).filter(|_| dist.sample(&mut rng) >= 0.5).count() as f64;
            let observed = heavy / n as f64;
            let expected = dist.heavy_probability();
            assert!(
                (observed - expected).abs() < 0.02,
                "{dist}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn ordering_of_heaviness() {
        assert!(
            UtilizationDist::BimodalLight.heavy_probability()
                < UtilizationDist::BimodalMedium.heavy_probability()
        );
        assert!(
            UtilizationDist::BimodalMedium.heavy_probability()
                < UtilizationDist::BimodalHeavy.heavy_probability()
        );
    }

    #[test]
    fn names() {
        assert_eq!(UtilizationDist::BimodalLight.to_string(), "bimodal-light");
    }
}
