//! Parametric PARSEC-style benchmark execution profiles.

use vc2m_rng::Rng;
use std::fmt;
use vc2m_model::{Alloc, ResourceSpace, Surface};

/// The thirteen PARSEC benchmarks used as task workloads in the
/// paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ParsecBenchmark {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
}

impl ParsecBenchmark {
    /// All benchmarks, in suite order.
    pub const ALL: [ParsecBenchmark; 13] = [
        ParsecBenchmark::Blackscholes,
        ParsecBenchmark::Bodytrack,
        ParsecBenchmark::Canneal,
        ParsecBenchmark::Dedup,
        ParsecBenchmark::Facesim,
        ParsecBenchmark::Ferret,
        ParsecBenchmark::Fluidanimate,
        ParsecBenchmark::Freqmine,
        ParsecBenchmark::Raytrace,
        ParsecBenchmark::Streamcluster,
        ParsecBenchmark::Swaptions,
        ParsecBenchmark::Vips,
        ParsecBenchmark::X264,
    ];

    /// The benchmark's lowercase suite name.
    pub fn name(self) -> &'static str {
        match self {
            ParsecBenchmark::Blackscholes => "blackscholes",
            ParsecBenchmark::Bodytrack => "bodytrack",
            ParsecBenchmark::Canneal => "canneal",
            ParsecBenchmark::Dedup => "dedup",
            ParsecBenchmark::Facesim => "facesim",
            ParsecBenchmark::Ferret => "ferret",
            ParsecBenchmark::Fluidanimate => "fluidanimate",
            ParsecBenchmark::Freqmine => "freqmine",
            ParsecBenchmark::Raytrace => "raytrace",
            ParsecBenchmark::Streamcluster => "streamcluster",
            ParsecBenchmark::Swaptions => "swaptions",
            ParsecBenchmark::Vips => "vips",
            ParsecBenchmark::X264 => "x264",
        }
    }

    /// The calibrated execution profile of this benchmark.
    ///
    /// Calibration rationale (all values are model parameters of the
    /// substitution documented in `DESIGN.md`, not measurements):
    /// memory intensity and working-set size follow the qualitative
    /// PARSEC characterization literature — `canneal` and
    /// `streamcluster` are strongly memory-bound with large working
    /// sets; `swaptions` and `blackscholes` are compute-bound and
    /// almost insensitive to cache/bandwidth; the rest fall in
    /// between.
    pub fn profile(self) -> BenchmarkProfile {
        // (memory_intensity, working_set_partitions, miss_steepness,
        //  miss_gain, bw_sensitivity)
        //
        // Calibrated to reproduce the evaluation's shape. Three facts
        // about the surfaces drive the five solutions apart:
        //
        // * maximum slowdowns (the cache-starved, bandwidth-starved
        //   corner standing in for "cache disabled, worst-case BW")
        //   span ≈2× (swaptions) to ≈10× (canneal) — this is what the
        //   Baseline provisions for, breaking it early;
        // * miss curves are *linear* in the cache deficit with large
        //   gains (θ = 1, κ up to 5.5): a quarter of the cache is not
        //   much better than the minimum, so the Evenly-partition
        //   split stays expensive (≈2.5× weighted at C/M partitions);
        // * covering most of a benchmark's working set recovers nearly
        //   all of the loss, which is exactly the skew vC²M's
        //   marginal-utility allocation exploits.
        let (mu, ws, theta, kappa, lambda) = match self {
            ParsecBenchmark::Blackscholes => (0.48, 8.0, 1.0, 3.0, 0.030),
            ParsecBenchmark::Bodytrack => (0.65, 9.0, 1.0, 4.0, 0.040),
            ParsecBenchmark::Canneal => (0.87, 20.0, 1.0, 6.0, 0.060),
            ParsecBenchmark::Dedup => (0.76, 11.0, 1.0, 5.0, 0.050),
            ParsecBenchmark::Facesim => (0.82, 18.0, 1.0, 5.6, 0.055),
            ParsecBenchmark::Ferret => (0.72, 10.0, 1.0, 4.6, 0.045),
            ParsecBenchmark::Fluidanimate => (0.80, 16.0, 1.0, 5.4, 0.055),
            ParsecBenchmark::Freqmine => (0.70, 10.0, 1.0, 4.4, 0.045),
            ParsecBenchmark::Raytrace => (0.60, 8.0, 1.0, 3.6, 0.035),
            ParsecBenchmark::Streamcluster => (0.85, 19.0, 1.0, 5.8, 0.060),
            ParsecBenchmark::Swaptions => (0.45, 8.0, 1.0, 2.8, 0.030),
            ParsecBenchmark::Vips => (0.68, 9.0, 1.0, 4.2, 0.040),
            ParsecBenchmark::X264 => (0.74, 10.0, 1.0, 4.8, 0.050),
        };
        BenchmarkProfile::new(self.name(), mu, ws, theta, kappa, lambda)
    }

    /// Picks a benchmark uniformly at random, as the paper's generator
    /// does for each task.
    pub fn sample<R: Rng>(rng: &mut R) -> ParsecBenchmark {
        Self::ALL[rng.gen_range(0..Self::ALL.len())]
    }
}

impl fmt::Display for ParsecBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parametric execution profile: how a benchmark's execution time
/// scales with its core's cache and bandwidth allocation.
///
/// The model splits execution into a compute part `(1 − μ)` that is
/// allocation-independent, and a memory part `μ` that scales with
///
/// * a **miss factor** `m(c) = 1 + κ·max(0, (w − c)/w)^θ` — misses grow
///   as the allocation `c` drops below the working set `w`, and
/// * a **stall factor** `f(b) = 1 + λ·(B/b − 1)` — each miss stalls
///   longer when bandwidth `b` shrinks below the full `B`.
///
/// The slowdown is `s(c, b) = (1 − μ) + μ·m(c)·f(b)`, normalized so
/// that `s(C, B) = 1` exactly (m(C) = 1 requires `w ≤ C`; profiles with
/// `w > C` are clamped at construction).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    name: &'static str,
    memory_intensity: f64,
    working_set: f64,
    miss_steepness: f64,
    miss_gain: f64,
    bw_sensitivity: f64,
}

impl BenchmarkProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `memory_intensity` is outside `[0, 1]` or any other
    /// parameter is negative or non-finite.
    pub fn new(
        name: &'static str,
        memory_intensity: f64,
        working_set: f64,
        miss_steepness: f64,
        miss_gain: f64,
        bw_sensitivity: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&memory_intensity),
            "memory intensity must be in [0, 1], got {memory_intensity}"
        );
        for (what, v) in [
            ("working_set", working_set),
            ("miss_steepness", miss_steepness),
            ("miss_gain", miss_gain),
            ("bw_sensitivity", bw_sensitivity),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{what} must be non-negative and finite, got {v}"
            );
        }
        BenchmarkProfile {
            name,
            memory_intensity,
            working_set,
            miss_steepness,
            miss_gain,
            bw_sensitivity,
        }
    }

    /// The profile's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Fraction of execution time that is memory-bound at the
    /// reference allocation.
    pub fn memory_intensity(&self) -> f64 {
        self.memory_intensity
    }

    /// Slowdown at a single allocation within `space`.
    ///
    /// # Panics
    ///
    /// Panics if `alloc` lies outside `space`.
    pub fn slowdown_at(&self, space: &ResourceSpace, alloc: Alloc) -> f64 {
        space
            .check(alloc)
            .unwrap_or_else(|e| panic!("slowdown_at: {e}"));
        let w = self.working_set.min(f64::from(space.cache_max()));
        let deficit = ((w - f64::from(alloc.cache)) / w).max(0.0);
        let miss_factor = 1.0 + self.miss_gain * deficit.powf(self.miss_steepness);
        let bw_ratio = f64::from(space.bw_max()) / f64::from(alloc.bandwidth);
        let stall_factor = 1.0 + self.bw_sensitivity * (bw_ratio - 1.0);
        (1.0 - self.memory_intensity) + self.memory_intensity * miss_factor * stall_factor
    }

    /// The full slowdown surface over `space`, normalized so the
    /// reference cell is exactly 1.
    pub fn slowdown_surface(&self, space: &ResourceSpace) -> Surface {
        Surface::from_fn(space, |alloc| self.slowdown_at(space, alloc))
            .expect("parametric slowdowns are positive and finite")
    }

    /// A *measured* slowdown surface: the model surface perturbed by
    /// multiplicative noise (standard deviation `sigma` per cell,
    /// mimicking the paper's max-of-25-runs measurement), then
    /// re-normalized so the reference cell is 1.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn measured_surface<R: Rng>(
        &self,
        space: &ResourceSpace,
        rng: &mut R,
        sigma: f64,
    ) -> Surface {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be non-negative, got {sigma}"
        );
        let noisy = Surface::from_fn(space, |alloc| {
            let noise: f64 = 1.0 + sigma * (rng.gen_f64() - 0.5) * 2.0;
            self.slowdown_at(space, alloc) * noise.max(0.01)
        })
        .expect("noisy slowdowns remain positive");
        let reference = noisy.reference();
        noisy.scaled(1.0 / reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_rng::DetRng;

    fn space() -> ResourceSpace {
        ResourceSpace::new(2, 20, 1, 20).unwrap()
    }

    #[test]
    fn all_profiles_normalize_to_one_at_reference() {
        let space = space();
        for bench in ParsecBenchmark::ALL {
            let s = bench.profile().slowdown_surface(&space);
            assert!(
                (s.reference() - 1.0).abs() < 1e-12,
                "{bench}: reference slowdown {}",
                s.reference()
            );
        }
    }

    #[test]
    fn all_profiles_are_monotone() {
        let space = space();
        for bench in ParsecBenchmark::ALL {
            let s = bench.profile().slowdown_surface(&space);
            assert!(
                s.is_monotone_non_increasing(),
                "{bench}: slowdown surface must not increase with resources"
            );
        }
    }

    #[test]
    fn max_slowdowns_span_calibrated_range() {
        let space = space();
        let mut max_seen = 0.0f64;
        let mut min_seen = f64::INFINITY;
        for bench in ParsecBenchmark::ALL {
            let m = bench.profile().slowdown_surface(&space).max_slowdown();
            assert!(m >= 1.0, "{bench}");
            max_seen = max_seen.max(m);
            min_seen = min_seen.min(m);
        }
        assert!(
            min_seen > 1.5 && min_seen < 4.0,
            "compute-bound end: {min_seen}"
        );
        assert!(
            max_seen > 8.0 && max_seen < 16.0,
            "memory-bound end: {max_seen}"
        );
    }

    #[test]
    fn memory_bound_benchmarks_slow_down_more() {
        let space = space();
        let canneal = ParsecBenchmark::Canneal.profile().slowdown_surface(&space);
        let swaptions = ParsecBenchmark::Swaptions
            .profile()
            .slowdown_surface(&space);
        assert!(canneal.max_slowdown() > 2.0 * swaptions.max_slowdown());
    }

    #[test]
    fn cache_only_vs_bandwidth_only_effects() {
        let space = space();
        let p = ParsecBenchmark::Streamcluster.profile();
        let full_cache_low_bw = p.slowdown_at(&space, Alloc::new(20, 1));
        let low_cache_full_bw = p.slowdown_at(&space, Alloc::new(2, 20));
        assert!(full_cache_low_bw > 1.0);
        assert!(low_cache_full_bw > 1.0);
        // Combined deprivation is worse than either alone.
        let both = p.slowdown_at(&space, Alloc::new(2, 1));
        assert!(both > full_cache_low_bw && both > low_cache_full_bw);
    }

    #[test]
    fn small_working_set_saturates() {
        // Once c covers the working set, more cache gives nothing.
        let space = space();
        let p = ParsecBenchmark::Swaptions.profile(); // working set 8
        let at_8 = p.slowdown_at(&space, Alloc::new(8, 20));
        let at_20 = p.slowdown_at(&space, Alloc::new(20, 20));
        assert!((at_8 - at_20).abs() < 1e-12);
        // Below the working set the slowdown strictly grows.
        let at_4 = p.slowdown_at(&space, Alloc::new(4, 20));
        assert!(at_4 > at_8);
    }

    #[test]
    fn names_and_sampling() {
        assert_eq!(ParsecBenchmark::Canneal.to_string(), "canneal");
        assert_eq!(ParsecBenchmark::ALL.len(), 13);
        let mut rng = DetRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(ParsecBenchmark::sample(&mut rng));
        }
        assert_eq!(seen.len(), 13, "uniform sampling should hit all benchmarks");
    }

    #[test]
    fn measured_surface_is_normalized_and_noisy() {
        let space = space();
        let mut rng = DetRng::seed_from_u64(1);
        let p = ParsecBenchmark::Ferret.profile();
        let clean = p.slowdown_surface(&space);
        let noisy = p.measured_surface(&space, &mut rng, 0.05);
        assert!((noisy.reference() - 1.0).abs() < 1e-12);
        let differs = clean
            .iter()
            .zip(noisy.iter())
            .any(|((_, a), (_, b))| (a - b).abs() > 1e-6);
        assert!(differs, "noise must actually perturb the surface");
    }

    #[test]
    fn zero_noise_measured_equals_model() {
        let space = space();
        let mut rng = DetRng::seed_from_u64(1);
        let p = ParsecBenchmark::Vips.profile();
        let clean = p.slowdown_surface(&space);
        let measured = p.measured_surface(&space, &mut rng, 0.0);
        for ((_, a), (_, b)) in clean.iter().zip(measured.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "memory intensity")]
    fn invalid_intensity_rejected() {
        let _ = BenchmarkProfile::new("bad", 1.5, 4.0, 1.0, 1.0, 0.1);
    }
}
