//! Workload generation: PARSEC-style benchmark profiles and random
//! taskset synthesis.
//!
//! The paper's evaluation (Section 5.1) generates real-time workloads
//! from measured PARSEC benchmark characteristics: each benchmark is
//! profiled on the prototype under every cache/bandwidth allocation
//! `(c, b)` with `c = 2..20`, `b = 1..20`, yielding a *slowdown
//! surface*; random tasks then inherit a benchmark's surface scaled to
//! their own reference WCET.
//!
//! Without the prototype hardware, this crate substitutes a calibrated
//! *parametric* execution model per benchmark (see
//! [`BenchmarkProfile`]): execution time splits into a compute fraction
//! and a memory fraction; the memory fraction scales with a cache-miss
//! curve (working-set knee) and with the reciprocal of allocated
//! bandwidth. The thirteen profiles are named after the PARSEC suite
//! and calibrated so that maximum slowdowns span the ≈1.2–4.5× range
//! of published PARSEC characterizations, with the memory-bound
//! members (`canneal`, `streamcluster`, …) at the high end and the
//! compute-bound members (`swaptions`, `blackscholes`) at the low end.
//!
//! Taskset synthesis ([`TasksetGenerator`]) follows the paper exactly:
//! harmonic periods uniformly covering \[100, 1100\] ms, task
//! utilizations from a uniform or one of three bimodal distributions,
//! task WCET surfaces derived from a uniformly chosen benchmark, and
//! tasks added until the target taskset reference utilization is
//! reached.
//!
//! # Example
//!
//! ```
//! use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};
//! use vc2m_model::Platform;
//!
//! let platform = Platform::platform_a();
//! let config = TasksetConfig::new(1.0, UtilizationDist::Uniform);
//! let mut generator = TasksetGenerator::new(platform.resources(), config, 42);
//! let taskset = generator.generate();
//! assert!(taskset.reference_utilization() >= 1.0);
//! assert!(taskset.is_harmonic());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod distributions;
mod generator;
mod profiles;

pub use distributions::UtilizationDist;
pub use generator::{TasksetConfig, TasksetGenerator};
pub use profiles::{BenchmarkProfile, ParsecBenchmark};
