//! Random taskset synthesis following Section 5.1 of the paper.

use crate::{ParsecBenchmark, UtilizationDist};
use vc2m_rng::{DetRng, Rng};
use std::fmt;
use vc2m_model::{ResourceSpace, Task, TaskId, TaskSet, VmId, VmSpec};

/// Configuration of taskset generation.
///
/// Defaults mirror the paper: harmonic periods uniformly covering
/// \[100, 1100\] ms (four power-of-two harmonic levels), tasks drawn
/// until the target *reference* utilization is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct TasksetConfig {
    target_utilization: f64,
    distribution: UtilizationDist,
    period_min: f64,
    period_max: f64,
    harmonic_levels: u32,
    vm_count: usize,
    benchmarks: Vec<ParsecBenchmark>,
}

impl TasksetConfig {
    /// Creates a configuration targeting the given taskset reference
    /// utilization with the given utilization distribution.
    ///
    /// # Panics
    ///
    /// Panics if `target_utilization` is not positive and finite.
    pub fn new(target_utilization: f64, distribution: UtilizationDist) -> Self {
        assert!(
            target_utilization.is_finite() && target_utilization > 0.0,
            "target utilization must be positive, got {target_utilization}"
        );
        TasksetConfig {
            target_utilization,
            distribution,
            period_min: 100.0,
            period_max: 1100.0,
            harmonic_levels: 4,
            vm_count: 1,
            benchmarks: ParsecBenchmark::ALL.to_vec(),
        }
    }

    /// Overrides the period range (default \[100, 1100\] ms).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max` and the range fits the harmonic
    /// levels (`min · 2^(levels−1) ≤ max`).
    pub fn with_period_range(mut self, min: f64, max: f64) -> Self {
        assert!(min > 0.0 && min < max, "need 0 < min < max");
        assert!(
            min * f64::from(1u32 << (self.harmonic_levels - 1)) <= max,
            "period range too narrow for {} harmonic levels",
            self.harmonic_levels
        );
        self.period_min = min;
        self.period_max = max;
        self
    }

    /// Overrides the number of power-of-two harmonic levels
    /// (default 4: periods r, 2r, 4r, 8r).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or the period range cannot fit it.
    pub fn with_harmonic_levels(mut self, levels: u32) -> Self {
        assert!(levels >= 1, "need at least one harmonic level");
        assert!(
            self.period_min * f64::from(1u32 << (levels - 1)) <= self.period_max,
            "period range too narrow for {levels} harmonic levels"
        );
        self.harmonic_levels = levels;
        self
    }

    /// Splits the generated workload across `vms` virtual machines
    /// (round-robin; default 1).
    ///
    /// # Panics
    ///
    /// Panics if `vms` is zero.
    pub fn with_vm_count(mut self, vms: usize) -> Self {
        assert!(vms >= 1, "need at least one VM");
        self.vm_count = vms;
        self
    }

    /// The target taskset reference utilization.
    pub fn target_utilization(&self) -> f64 {
        self.target_utilization
    }

    /// The utilization distribution.
    pub fn distribution(&self) -> UtilizationDist {
        self.distribution
    }

    /// The number of VMs the workload is split across.
    pub fn vm_count(&self) -> usize {
        self.vm_count
    }

    /// Restricts the benchmark pool tasks draw their WCET surfaces
    /// from (default: the whole PARSEC suite). Useful for sensitivity
    /// studies, e.g. memory-bound-only workloads.
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` is empty.
    pub fn with_benchmarks(mut self, benchmarks: Vec<ParsecBenchmark>) -> Self {
        assert!(!benchmarks.is_empty(), "need at least one benchmark");
        self.benchmarks = benchmarks;
        self
    }

    /// The benchmark pool.
    pub fn benchmarks(&self) -> &[ParsecBenchmark] {
        &self.benchmarks
    }
}

/// A seeded random taskset generator.
///
/// Generation follows Section 5.1:
///
/// 1. a harmonic *period base* `r` is drawn so that the levels
///    `r·2^k` cover the period range;
/// 2. each task draws a period uniformly among the levels, a
///    utilization `uᵢ` from the configured distribution, and a PARSEC
///    benchmark uniformly;
/// 3. the task's maximum WCET is `eᵢᵐᵃˣ = uᵢ·pᵢ`; its reference WCET is
///    `e*ᵢ = eᵢᵐᵃˣ / sᵐᵃˣ` (the benchmark's maximum slowdown factor);
///    its WCET surface is `eᵢ(c,b) = e*ᵢ · s(c,b)`, preserving the
///    benchmark's sensitivity to cache and bandwidth;
/// 4. tasks are added until the sum of `e*ᵢ/pᵢ` reaches the target
///    reference utilization.
#[derive(Debug)]
pub struct TasksetGenerator {
    space: ResourceSpace,
    config: TasksetConfig,
    rng: DetRng,
    next_task_id: usize,
}

impl TasksetGenerator {
    /// Creates a generator over the platform resource space `space`,
    /// deterministic in `seed`.
    pub fn new(space: ResourceSpace, config: TasksetConfig, seed: u64) -> Self {
        TasksetGenerator {
            space,
            config,
            rng: DetRng::seed_from_u64(seed),
            next_task_id: 0,
        }
    }

    /// Generates one taskset, together with each task's source
    /// benchmark.
    pub fn generate_with_benchmarks(&mut self) -> Vec<(Task, ParsecBenchmark)> {
        let levels = self.config.harmonic_levels;
        let top_factor = f64::from(1u32 << (levels - 1));
        let base = self
            .rng
            .gen_range(self.config.period_min..=self.config.period_max / top_factor);
        // Quantize the base to whole nanoseconds so that every
        // power-of-two multiple is *exactly* representable: analysis
        // and simulation agree on divisibility, and hyperperiods stay
        // equal to the longest period instead of exploding through
        // rounding residue.
        let base = (base * 1e6).round() / 1e6;

        let mut tasks = Vec::new();
        let mut total_ref_util = 0.0;
        while total_ref_util < self.config.target_utilization {
            let level = self.rng.gen_range(0..levels);
            let period = base * f64::from(1u32 << level);
            let utilization = self.config.distribution.sample(&mut self.rng);
            let benchmark =
                self.config.benchmarks[self.rng.gen_range(0..self.config.benchmarks.len())];
            let slowdown = benchmark.profile().slowdown_surface(&self.space);
            let max_slowdown = slowdown.max_slowdown();
            let e_max = utilization * period;
            let e_ref = e_max / max_slowdown;
            let surface = slowdown.scaled(e_ref);
            let id = TaskId(self.next_task_id);
            self.next_task_id += 1;
            let task = Task::new(id, period, surface)
                .expect("generated task parameters are valid by construction");
            total_ref_util += task.reference_utilization();
            tasks.push((task, benchmark));
        }
        tasks
    }

    /// Generates one taskset.
    pub fn generate(&mut self) -> TaskSet {
        self.generate_with_benchmarks()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    /// Generates one workload split across the configured number of
    /// VMs (round-robin by generation order).
    ///
    /// VMs are only created if they receive at least one task, so the
    /// result may have fewer than `vm_count` VMs for tiny tasksets.
    pub fn generate_vms(&mut self) -> Vec<VmSpec> {
        let tasks = self.generate();
        let vm_count = self.config.vm_count;
        let mut buckets: Vec<TaskSet> = (0..vm_count).map(|_| TaskSet::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            buckets[i % vm_count].push(task);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| VmSpec::new(VmId(i), b).expect("bucket is non-empty"))
            .collect()
    }
}

impl fmt::Display for TasksetGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TasksetGenerator(target u*={}, {}, {} VMs)",
            self.config.target_utilization, self.config.distribution, self.config.vm_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc2m_model::Platform;

    fn generator(target: f64, seed: u64) -> TasksetGenerator {
        TasksetGenerator::new(
            Platform::platform_a().resources(),
            TasksetConfig::new(target, UtilizationDist::Uniform),
            seed,
        )
    }

    #[test]
    fn reaches_target_utilization_without_overshooting_much() {
        let ts = generator(1.0, 1).generate();
        let u = ts.reference_utilization();
        assert!(u >= 1.0, "must reach the target, got {u}");
        // The last task adds at most max utilization 0.4.
        assert!(u < 1.45, "overshoot bounded by one task, got {u}");
    }

    #[test]
    fn periods_are_harmonic_and_in_range() {
        for seed in 0..20 {
            let ts = generator(2.0, seed).generate();
            assert!(ts.is_harmonic(), "seed {seed}");
            for t in ts.iter() {
                assert!(
                    (100.0..=1100.0).contains(&t.period()),
                    "seed {seed}: period {}",
                    t.period()
                );
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = generator(1.0, 42).generate();
        let b = generator(1.0, 42).generate();
        assert_eq!(a, b);
        let c = generator(1.0, 43).generate();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn wcet_surfaces_preserve_benchmark_sensitivity() {
        let space = Platform::platform_a().resources();
        for (task, bench) in generator(1.0, 5).generate_with_benchmarks() {
            let expected = bench.profile().slowdown_surface(&space);
            let actual = task.slowdown_vector();
            for (alloc, e) in expected.iter() {
                assert!(
                    (actual.at(alloc) - e).abs() < 1e-9,
                    "slowdown mismatch for {bench} at {alloc}"
                );
            }
        }
    }

    #[test]
    fn max_wcet_is_utilization_times_period() {
        for (task, bench) in generator(1.0, 9).generate_with_benchmarks() {
            let s_max = bench
                .profile()
                .slowdown_surface(task.wcet_surface().space())
                .max_slowdown();
            // e_max = e_ref * s_max must not exceed the period (u <= 0.4),
            // and reference utilization is u / s_max.
            let e_max = task.reference_wcet() * s_max;
            let u = e_max / task.period();
            assert!((0.1..0.4).contains(&u), "recovered utilization {u}");
        }
    }

    #[test]
    fn task_ids_are_unique_across_generations() {
        let mut g = generator(0.5, 3);
        let a = g.generate();
        let b = g.generate();
        let mut ids: Vec<usize> = a.iter().chain(b.iter()).map(|t| t.id().index()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn vm_split_partitions_all_tasks() {
        let mut g = TasksetGenerator::new(
            Platform::platform_a().resources(),
            TasksetConfig::new(2.0, UtilizationDist::BimodalMedium).with_vm_count(3),
            11,
        );
        let vms = g.generate_vms();
        assert!(vms.len() <= 3 && !vms.is_empty());
        let total: usize = vms.iter().map(|vm| vm.tasks().len()).sum();
        assert!(
            total >= 5,
            "2.0 utilization needs several tasks, got {total}"
        );
        // Each VM's taskset is itself harmonic (subsets of harmonic sets).
        for vm in &vms {
            assert!(vm.tasks().is_harmonic());
        }
    }

    #[test]
    fn custom_period_range() {
        let config = TasksetConfig::new(0.5, UtilizationDist::Uniform)
            .with_period_range(10.0, 160.0)
            .with_harmonic_levels(3);
        let mut g = TasksetGenerator::new(Platform::platform_c().resources(), config, 2);
        for t in g.generate().iter() {
            assert!((10.0..=160.0).contains(&t.period()));
        }
    }

    #[test]
    fn restricted_benchmark_pool_is_respected() {
        let config = TasksetConfig::new(1.0, UtilizationDist::Uniform)
            .with_benchmarks(vec![ParsecBenchmark::Canneal, ParsecBenchmark::Swaptions]);
        let mut g = TasksetGenerator::new(Platform::platform_a().resources(), config, 4);
        for (_, bench) in g.generate_with_benchmarks() {
            assert!(
                matches!(bench, ParsecBenchmark::Canneal | ParsecBenchmark::Swaptions),
                "got {bench}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one benchmark")]
    fn empty_benchmark_pool_rejected() {
        let _ = TasksetConfig::new(1.0, UtilizationDist::Uniform).with_benchmarks(vec![]);
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn narrow_period_range_rejected() {
        let _ = TasksetConfig::new(0.5, UtilizationDist::Uniform).with_period_range(100.0, 200.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_target_rejected() {
        let _ = TasksetConfig::new(0.0, UtilizationDist::Uniform);
    }
}
