//! Regression pin: the workload generator's exact output for a fixed
//! seed. Guards the determinism policy — any change to the RNG stream
//! (seeding, sampling order, generator internals) shows up here
//! first, rather than as a mysterious drift in the figures.

// The pinned literals deliberately carry 17 significant digits (exact
// f64 round-trip), beyond what clippy considers necessary precision.
#![allow(clippy::excessive_precision)]

use vc2m_model::Platform;
use vc2m_workload::{TasksetConfig, TasksetGenerator, UtilizationDist};

/// `(task id, period ms, reference WCET ms)` for seed 42 at target
/// utilization 0.8 (uniform distribution, platform A). The literals
/// are 17-significant-digit decimal, which round-trips f64 exactly.
const EXPECTED: &[(usize, f64, f64)] = &[
    (0, 2.610_728_859_999_999_83e2, 2.956_828_524_887_799_50e1),
    (1, 5.221_457_719_999_999_65e2, 1.220_397_422_714_743_03e1),
    (2, 1.044_291_543_999_999_93e3, 9.050_431_909_720_060_73e1),
    (3, 1.305_364_429_999_999_91e2, 2.858_794_307_732_858_36e0),
    (4, 1.305_364_429_999_999_91e2, 2.601_524_109_203_210_87e0),
    (5, 1.044_291_543_999_999_93e3, 9.819_188_482_155_522_02e1),
    (6, 1.305_364_429_999_999_91e2, 5.249_262_208_236_095_79e0),
    (7, 1.044_291_543_999_999_93e3, 2.664_829_687_189_824_98e1),
    (8, 2.610_728_859_999_999_83e2, 2.997_673_965_733_528_33e1),
    (9, 2.610_728_859_999_999_83e2, 1.634_998_497_679_632_83e1),
    (10, 1.305_364_429_999_999_91e2, 1.220_039_423_948_877_12e1),
    (11, 2.610_728_859_999_999_83e2, 6.260_846_416_093_347_24e0),
    (12, 1.305_364_429_999_999_91e2, 4.936_073_864_960_035_53e0),
    (13, 1.044_291_543_999_999_93e3, 1.398_287_262_438_704_03e1),
    (14, 1.305_364_429_999_999_91e2, 3.764_330_731_235_276_06e0),
    (15, 1.044_291_543_999_999_93e3, 5.602_140_989_603_954_32e1),
];

#[test]
fn taskset_for_seed_42_is_pinned() {
    let platform = Platform::platform_a();
    let mut generator = TasksetGenerator::new(
        platform.resources(),
        TasksetConfig::new(0.8, UtilizationDist::Uniform),
        42,
    );
    let tasks = generator.generate();
    assert_eq!(tasks.len(), EXPECTED.len(), "task count drifted");
    for (t, &(id, period, wcet)) in tasks.iter().zip(EXPECTED) {
        assert_eq!(t.id().index(), id);
        assert_eq!(t.period(), period, "period of task {id} drifted");
        assert_eq!(
            t.reference_wcet(),
            wcet,
            "reference WCET of task {id} drifted"
        );
    }
    assert_eq!(
        tasks.reference_utilization(),
        8.534_620_411_028_028_82e-1,
        "total utilization drifted"
    );
}

#[test]
fn generation_is_bit_identical_across_runs() {
    let platform = Platform::platform_a();
    let make = || {
        TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(1.2, UtilizationDist::BimodalMedium),
            0xDAC_2019,
        )
        .generate()
    };
    assert_eq!(make(), make());
}
