//! Property-based tests for workload generation.

use proptest::prelude::*;
use vc2m_model::{Platform, ResourceSpace};
use vc2m_workload::{ParsecBenchmark, TasksetConfig, TasksetGenerator, UtilizationDist};

fn arb_dist() -> impl Strategy<Value = UtilizationDist> {
    prop_oneof![
        Just(UtilizationDist::Uniform),
        Just(UtilizationDist::BimodalLight),
        Just(UtilizationDist::BimodalMedium),
        Just(UtilizationDist::BimodalHeavy),
    ]
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop_oneof![
        Just(Platform::platform_a()),
        Just(Platform::platform_b()),
        Just(Platform::platform_c()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_tasksets_satisfy_all_paper_invariants(
        platform in arb_platform(),
        dist in arb_dist(),
        target in 0.1f64..2.0,
        seed in 0u64..10_000,
    ) {
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(target, dist),
            seed,
        );
        let tasks = generator.generate();
        // Reaches the target, overshooting by at most one task's
        // utilization (≤ 0.9 for bimodal-heavy).
        let u = tasks.reference_utilization();
        prop_assert!(u >= target);
        prop_assert!(u < target + 0.91, "overshoot too large: {u} vs {target}");
        // Harmonic periods in [100, 1100].
        prop_assert!(tasks.is_harmonic());
        for t in tasks.iter() {
            prop_assert!((100.0..=1100.0 + 1e-9).contains(&t.period()));
            // The WCET surface is monotone (more resources never hurt)
            // and the worst corner matches e_max = u_i * p_i <= 0.9 p_i.
            prop_assert!(t.wcet_surface().is_monotone_non_increasing());
            let e_max = t.wcet_surface().at_minimum();
            prop_assert!(e_max <= 0.9 * t.period() + 1e-9);
            prop_assert!(t.reference_wcet() <= e_max + 1e-12);
        }
    }

    #[test]
    fn benchmark_profiles_are_sane_on_any_platform(platform in arb_platform()) {
        let space = platform.resources();
        for bench in ParsecBenchmark::ALL {
            let s = bench.profile().slowdown_surface(&space);
            prop_assert!((s.reference() - 1.0).abs() < 1e-12, "{bench}");
            prop_assert!(s.is_monotone_non_increasing(), "{bench}");
            prop_assert!(s.max_slowdown() >= 1.0 && s.max_slowdown() < 16.0, "{bench}");
        }
    }

    #[test]
    fn vm_split_conserves_tasks(
        vm_count in 1usize..6,
        target in 0.3f64..1.5,
        seed in 0u64..1000,
    ) {
        let platform = Platform::platform_a();
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(target, UtilizationDist::Uniform).with_vm_count(vm_count),
            seed,
        );
        let vms = generator.generate_vms();
        prop_assert!(!vms.is_empty() && vms.len() <= vm_count);
        // Union of VM tasksets = the full workload, utilization intact.
        let total: f64 = vms.iter().map(|vm| vm.reference_utilization()).sum();
        prop_assert!(total >= target);
        // Ids unique across VMs.
        let mut ids: Vec<usize> = vms
            .iter()
            .flat_map(|vm| vm.tasks().iter().map(|t| t.id().index()))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    #[test]
    fn same_seed_same_taskset_different_seed_probably_not(
        seed in 0u64..1000,
        dist in arb_dist(),
    ) {
        let space: ResourceSpace = Platform::platform_a().resources();
        let make = |s: u64| {
            TasksetGenerator::new(space, TasksetConfig::new(0.8, dist), s).generate()
        };
        prop_assert_eq!(make(seed), make(seed));
    }
}
