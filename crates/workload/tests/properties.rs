//! Property-based tests for workload generation, driven by the
//! in-tree seeded case harness (`vc2m_rng::cases`).

use vc2m_model::{Platform, ResourceSpace};
use vc2m_rng::{cases::check, DetRng, Rng};
use vc2m_workload::{ParsecBenchmark, TasksetConfig, TasksetGenerator, UtilizationDist};

fn arb_dist(rng: &mut DetRng) -> UtilizationDist {
    let dists = [
        UtilizationDist::Uniform,
        UtilizationDist::BimodalLight,
        UtilizationDist::BimodalMedium,
        UtilizationDist::BimodalHeavy,
    ];
    dists[rng.gen_range(0..dists.len())]
}

fn arb_platform(rng: &mut DetRng) -> Platform {
    let platforms = [
        Platform::platform_a(),
        Platform::platform_b(),
        Platform::platform_c(),
    ];
    platforms[rng.gen_range(0..platforms.len())]
}

/// The paper's workload invariants for one generated taskset: target
/// utilization reached without large overshoot, harmonic periods in
/// range, monotone WCET surfaces with bounded worst corners.
fn assert_paper_invariants(platform: Platform, dist: UtilizationDist, target: f64, seed: u64) {
    let mut generator =
        TasksetGenerator::new(platform.resources(), TasksetConfig::new(target, dist), seed);
    let tasks = generator.generate();
    // Reaches the target, overshooting by at most one task's
    // utilization (≤ 0.9 for bimodal-heavy).
    let u = tasks.reference_utilization();
    assert!(u >= target);
    assert!(u < target + 0.91, "overshoot too large: {u} vs {target}");
    // Harmonic periods in [100, 1100].
    assert!(tasks.is_harmonic());
    for t in tasks.iter() {
        assert!((100.0..=1100.0 + 1e-9).contains(&t.period()));
        // The WCET surface is monotone (more resources never hurt)
        // and the worst corner matches e_max = u_i * p_i <= 0.9 p_i.
        assert!(t.wcet_surface().is_monotone_non_increasing());
        let e_max = t.wcet_surface().at_minimum();
        assert!(e_max <= 0.9 * t.period() + 1e-9);
        assert!(t.reference_wcet() <= e_max + 1e-12);
    }
}

#[test]
fn generated_tasksets_satisfy_all_paper_invariants() {
    check(48, |rng| {
        let platform = arb_platform(rng);
        let dist = arb_dist(rng);
        let target = rng.gen_range(0.1f64..2.0);
        let seed = rng.gen_range(0u64..10_000);
        assert_paper_invariants(platform, dist, target, seed);
    });
}

/// Regression (from a retired shrinker seed that shrank to platform A,
/// 4 cores / cache 2..=20 / bandwidth 1..=20): pin the invariant run
/// on that exact platform across every distribution and a spread of
/// targets and seeds, independent of the harness's case sampling.
#[test]
fn regression_platform_a_paper_invariants_pinned() {
    let dists = [
        UtilizationDist::Uniform,
        UtilizationDist::BimodalLight,
        UtilizationDist::BimodalMedium,
        UtilizationDist::BimodalHeavy,
    ];
    for dist in dists {
        for (target, seed) in [(0.1, 0u64), (0.7, 17), (1.3, 4242), (2.0, 9001)] {
            assert_paper_invariants(Platform::platform_a(), dist, target, seed);
        }
    }
}

#[test]
fn benchmark_profiles_are_sane_on_any_platform() {
    check(48, |rng| {
        let platform = arb_platform(rng);
        let space = platform.resources();
        for bench in ParsecBenchmark::ALL {
            let s = bench.profile().slowdown_surface(&space);
            assert!((s.reference() - 1.0).abs() < 1e-12, "{bench}");
            assert!(s.is_monotone_non_increasing(), "{bench}");
            assert!(s.max_slowdown() >= 1.0 && s.max_slowdown() < 16.0, "{bench}");
        }
    });
}

#[test]
fn vm_split_conserves_tasks() {
    check(48, |rng| {
        let vm_count = rng.gen_range(1usize..6);
        let target = rng.gen_range(0.3f64..1.5);
        let seed = rng.gen_range(0u64..1000);
        let platform = Platform::platform_a();
        let mut generator = TasksetGenerator::new(
            platform.resources(),
            TasksetConfig::new(target, UtilizationDist::Uniform).with_vm_count(vm_count),
            seed,
        );
        let vms = generator.generate_vms();
        assert!(!vms.is_empty() && vms.len() <= vm_count);
        // Union of VM tasksets = the full workload, utilization intact.
        let total: f64 = vms.iter().map(|vm| vm.reference_utilization()).sum();
        assert!(total >= target);
        // Ids unique across VMs.
        let mut ids: Vec<usize> = vms
            .iter()
            .flat_map(|vm| vm.tasks().iter().map(|t| t.id().index()))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    });
}

#[test]
fn same_seed_same_taskset_different_seed_probably_not() {
    check(48, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let dist = arb_dist(rng);
        let space: ResourceSpace = Platform::platform_a().resources();
        let make = |s: u64| TasksetGenerator::new(space, TasksetConfig::new(0.8, dist), s).generate();
        assert_eq!(make(seed), make(seed));
    });
}
