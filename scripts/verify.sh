#!/usr/bin/env sh
# Offline verification gate: build, test, lint — no network, no
# registry. Run from the repository root.
set -eu

cargo build --release --offline
cargo test -q --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: OK"
